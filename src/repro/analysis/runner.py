"""Batched experiment runner: declarative grids, process fan-out, caching.

This is the scale harness the benchmark scripts and the ``repro sweep``
command drive (see DESIGN.md §6).  It replaces the serial
:func:`repro.analysis.sweep.run_sweep` loop as the way experiments are
executed:

* **Declarative grids** — an :class:`ExperimentSpec` names workload specs
  (the portable strings of :mod:`repro.workloads.spec`), cache sizes, fetch
  times, disk counts, seeds and algorithm specs (the typed strings of
  :mod:`repro.algorithms.registry`); the runner expands the cross product
  into :class:`ExperimentPoint` s.

* **Process fan-out** — points are independent, so they run under a
  ``concurrent.futures.ProcessPoolExecutor`` when ``workers > 1``.
  Determinism is preserved by construction: a point is regenerated from its
  spec inside the worker (all workload generators take explicit seeds), and
  results are collected in grid order regardless of completion order, so
  serial and parallel runs emit byte-identical JSON.

* **Result caching** — each point's result can be cached on disk, keyed by a
  SHA-256 fingerprint of the *instance content* (sequence, cache size, fetch
  time, layout, warm set), the algorithm spec and the engine.  Re-running a
  sweep after editing an unrelated grid axis only simulates the new points.

* **Optimum pipeline** — ``ExperimentSpec(compute_optimum=True)`` routes
  every point's instance through the optimum service
  (:mod:`repro.lp.service`): solves are deduplicated per instance (one LP
  for all algorithms sharing it), fanned out *alongside* the algorithm
  simulations on the same process pool, cached on disk under
  ``<cache_dir>/optima`` keyed by the canonical instance fingerprint, and
  attached to every record (``optimal_stall``/``optimal_elapsed`` plus the
  solve wall time).  Cached simulation records that predate the optimum are
  upgraded in place; re-running a warmed grid performs no LP solve at all.

* **Uniform emission** — every point evaluates to one typed
  :class:`~repro.analysis.results.RunRecord`; the run returns them as a
  :class:`~repro.analysis.results.ResultSet` with uniform row/JSON/CSV
  emission and column selection, the same model the ratio harness and the
  legacy sweep produce.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..algorithms.registry import canonicalize_algorithm_spec, make_algorithm
from ..disksim.executor import simulate
from ..disksim.instance import ProblemInstance
from ..errors import ConfigurationError
from ..lp.canonical import instance_fingerprint as _canonical_fingerprint
from ..lp.service import OptimumRecord, OptimumService, SolverConfig
from ..workloads.spec import (
    build_workload_instance,
    get_layout_builder,
    with_spec_params,
    workload_accepts,
)
from .results import ResultSet, RunRecord

__all__ = [
    "ExperimentSpec",
    "ExperimentPoint",
    "ExperimentRun",
    "instance_fingerprint",
    "run_experiments",
    "evaluate_instances",
]


# ---------------------------------------------------------------------------------
# grid declaration
# ---------------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment grid.

    The cross product ``workloads x seeds x disks x layouts x cache_sizes x
    fetch_times x algorithms`` defines the points.  ``seeds`` is applied by
    rewriting the workload spec's ``seed`` parameter for workloads whose
    schema documents one; deterministic generators collapse the seed axis to
    a single point (the typed registry would reject an injected key they
    don't accept, and re-running them per seed would duplicate identical
    rows).  Leave it at ``(None,)`` to take every spec verbatim.  ``layouts`` names block
    placements from :data:`repro.workloads.spec.LAYOUT_BUILDERS`; at
    ``disks == 1`` placement is irrelevant, so only the first layout is
    emitted there (no duplicate points).

    ``compute_optimum=True`` additionally solves every point's instance
    optimum through the optimum service (one deduplicated solve per
    instance, method ``optimum_method`` for multi-disk instances) and
    attaches ``optimal_stall``/``optimal_elapsed``/solve wall time to every
    record, turning the grid into a ratio experiment.
    """

    name: str
    workloads: Tuple[str, ...]
    cache_sizes: Tuple[int, ...]
    fetch_times: Tuple[int, ...]
    algorithms: Tuple[str, ...]
    disks: Tuple[int, ...] = (1,)
    seeds: Tuple[Optional[int], ...] = (None,)
    layouts: Tuple[str, ...] = ("striped",)
    engine: str = "indexed"
    compute_optimum: bool = False
    optimum_method: str = "auto"

    def __post_init__(self):
        SolverConfig(method=self.optimum_method)  # validate eagerly
        for axis in (
            "workloads", "cache_sizes", "fetch_times", "algorithms",
            "disks", "seeds", "layouts",
        ):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
        if not all(
            [self.workloads, self.cache_sizes, self.fetch_times, self.algorithms,
             self.disks, self.seeds, self.layouts]
        ):
            raise ConfigurationError("every grid axis needs at least one entry")
        for layout in self.layouts:
            get_layout_builder(layout)  # fail at construction, not in a worker
        for algorithm in self.algorithms:
            # Construct (and discard) each algorithm: building is cheap and,
            # unlike a schema-only parse, validates nested component specs
            # (combination:delay=.../alt=...) before any worker starts.
            make_algorithm(algorithm)

    def points(self) -> List["ExperimentPoint"]:
        """The grid points in deterministic (nested-loop) order."""
        out: List[ExperimentPoint] = []
        for workload in self.workloads:
            seedable = workload_accepts(workload, "seed")
            # A workload without a seed parameter regenerates identically for
            # every seed; collapse the axis so no duplicate points are emitted.
            for seed in self.seeds if seedable else self.seeds[:1]:
                if seed is None or not seedable:
                    spec = workload
                else:
                    spec = with_spec_params(workload, seed=seed)
                for disks in self.disks:
                    layouts = self.layouts if disks > 1 else self.layouts[:1]
                    for layout in layouts:
                        for cache_size in self.cache_sizes:
                            for fetch_time in self.fetch_times:
                                for algorithm in self.algorithms:
                                    out.append(
                                        ExperimentPoint(
                                            workload=spec,
                                            cache_size=cache_size,
                                            fetch_time=fetch_time,
                                            disks=disks,
                                            layout=layout,
                                            algorithm=algorithm,
                                            engine=self.engine,
                                        )
                                    )
        return out


@dataclass(frozen=True)
class ExperimentPoint:
    """One (instance, algorithm) evaluation, described portably.

    Either ``workload`` (a spec string; the instance is regenerated in the
    worker) or ``instance`` (a prebuilt :class:`ProblemInstance`, pickled to
    the worker — used by benchmark scripts whose instances have no spec
    form) must be set.
    """

    workload: Optional[str] = None
    cache_size: int = 16
    fetch_time: int = 8
    disks: int = 1
    layout: str = "striped"
    algorithm: str = "aggressive"
    engine: str = "indexed"
    label: Optional[str] = None
    instance: Optional[ProblemInstance] = field(default=None, compare=False)

    def build_instance(self) -> ProblemInstance:
        """The problem instance of this point (built or passed through)."""
        if self.instance is not None:
            return self.instance
        if self.workload is None:
            raise ConfigurationError("ExperimentPoint needs a workload spec or an instance")
        return build_workload_instance(
            self.workload,
            cache_size=self.cache_size,
            fetch_time=self.fetch_time,
            disks=self.disks,
            layout=self.layout,
        )

    def describe(self) -> str:
        """Stable human-readable label of the point."""
        if self.label is not None:
            return self.label
        placement = f" layout={self.layout}" if self.disks > 1 else ""
        return (
            f"{self.workload} k={self.cache_size} F={self.fetch_time} "
            f"D={self.disks}{placement} alg={self.algorithm}"
        )

    def recorded_layout(self) -> Optional[str]:
        """The layout name a record carries (None where placement is moot)."""
        if self.workload is not None and self.disks > 1:
            return self.layout
        return None


# ---------------------------------------------------------------------------------
# fingerprints and caching
# ---------------------------------------------------------------------------------


def instance_fingerprint(instance: ProblemInstance) -> str:
    """SHA-256 fingerprint of the instance *content*.

    Delegates to the canonical helper of :mod:`repro.lp.canonical` (shared
    with the optimum service and the brute-force oracle), so equal — or
    optimum-equivalent, e.g. differing only in the names of never-requested
    warm blocks — instances produced by different code paths share cache
    entries.
    """
    return _canonical_fingerprint(instance)


def _instance_identity(point: ExperimentPoint) -> str:
    """The *instance* identity of a point (algorithm and engine stripped).

    Spec-described points are keyed by their grid coordinates — the spec
    string regenerates the instance deterministically, and hashing the
    coordinates avoids building every instance serially in the parent just
    to compute keys.  Prebuilt-instance points (already materialised, so
    fingerprinting costs no extra build) are keyed by canonical content,
    letting equal instances share entries across labels.  Shared by the
    result-cache key and the optimum-solve deduplication, so the two can
    never drift apart.
    """
    if point.workload is not None:
        # Layout only shapes the instance when there is more than one disk;
        # leaving it out of the D=1 identity lets those entries be shared.
        placement = f";layout={point.layout}" if point.disks > 1 else ""
        return (
            f"spec={point.workload};k={point.cache_size};F={point.fetch_time};"
            f"D={point.disks}{placement}"
        )
    return "content=" + _canonical_fingerprint(point.build_instance())


def _point_cache_key(point: ExperimentPoint) -> str:
    """Cache key of a point: instance identity x canonical algorithm x engine.

    The algorithm identity is the *canonical* spec, so ``delay:3`` and
    ``delay:d=3`` share entries.
    """
    algorithm = canonicalize_algorithm_spec(point.algorithm)
    return hashlib.sha256(
        f"{_instance_identity(point)};alg={algorithm};engine={point.engine}".encode()
    ).hexdigest()


def _evaluate_point(point: ExperimentPoint) -> RunRecord:
    """Worker entry: simulate one point and return its typed record.

    Module-level (picklable) so it can run inside a process pool; everything
    it needs travels inside the :class:`ExperimentPoint`.
    """
    instance = point.build_instance()
    algorithm = make_algorithm(point.algorithm)
    result = simulate(instance, algorithm, engine=point.engine)
    return RunRecord.from_simulation(
        result,
        point=point.describe(),
        algorithm_spec=point.algorithm,
        workload=point.workload,
        layout=point.recorded_layout(),
        engine=point.engine,
    )


def _compute_point_optimum(task: Tuple[ExperimentPoint, SolverConfig, Optional[str]]) -> OptimumRecord:
    """Worker entry: compute (or fetch from the shared disk cache) one optimum.

    Runs in the same process pool as :func:`_evaluate_point`, so optimum
    solves proceed alongside algorithm simulations.  The worker-local
    :class:`OptimumService` consults the shared disk cache first — a warmed
    cache makes this a fingerprint lookup, never an LP solve.
    """
    point, config, optimum_cache_dir = task
    service = OptimumService(optimum_cache_dir, config)
    return service.optimum(point.build_instance())


class _ResultCache:
    """One-JSON-file-per-point cache of run records under a directory."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[RunRecord]:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            return RunRecord.from_json_dict(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Unreadable or pre-RunRecord entries are re-simulated, not fatal.
            return None

    def put(self, key: str, record: RunRecord) -> None:
        self._path(key).write_text(json.dumps(record.to_json_dict(), sort_keys=True))


# ---------------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------------

#: Backwards-compatible name: runner invocations return the unified
#: :class:`~repro.analysis.results.ResultSet` model.
ExperimentRun = ResultSet


def _execute_points(
    points: Sequence[ExperimentPoint],
    *,
    workers: int = 0,
    cache_dir=None,
    optimum: Optional[OptimumService] = None,
) -> Tuple[List[RunRecord], int]:
    """Evaluate ``points`` (cached, then serial or fanned out) in grid order.

    With an :class:`OptimumService`, optimum solves are deduplicated per
    instance identity and dispatched alongside the pending simulations;
    their results are attached to every record of that instance — including
    cached records that predate the optimum, which are upgraded in the
    result cache.  A cached record's optimum is trusted only when its
    recorded solver key matches this run's configuration; records solved
    under a different configuration are re-attached through the
    (config-keyed) optimum cache.
    """
    cache = _ResultCache(cache_dir) if cache_dir is not None else None
    records: List[Optional[RunRecord]] = [None] * len(points)
    keys: List[Optional[str]] = [None] * len(points)
    pending: List[Tuple[int, ExperimentPoint, Optional[str]]] = []
    needs_optimum: Dict[str, List[int]] = {}
    representative: Dict[str, ExperimentPoint] = {}
    cached_points = 0

    def request_optimum(position: int, point: ExperimentPoint) -> None:
        identity = _instance_identity(point)
        needs_optimum.setdefault(identity, []).append(position)
        representative.setdefault(identity, point)

    for position, point in enumerate(points):
        key = _point_cache_key(point) if cache is not None else None
        keys[position] = key
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                # The cached metrics are content-determined, but the identity
                # fields belong to whichever run wrote the entry; restore the
                # current point's identity so labels stay correct when an
                # entry is shared across labels.
                records[position] = hit.with_identity(
                    point=point.describe(),
                    workload=point.workload,
                    algorithm_spec=point.algorithm,
                    layout=point.recorded_layout(),
                )
                cached_points += 1
                if optimum is not None and (
                    hit.optimal_elapsed is None
                    or hit.optimum_solver_key != optimum.config.key()
                ):
                    request_optimum(position, point)
                continue
        pending.append((position, point, key))
        if optimum is not None:
            request_optimum(position, point)

    identities = list(needs_optimum)
    optimum_cache_dir = (
        None
        if optimum is None or optimum.cache_dir is None
        else str(optimum.cache_dir)
    )
    solved: List[OptimumRecord] = []
    if pending or identities:
        if workers and workers > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # Both maps enqueue immediately, so optimum solves run
                # alongside the algorithm simulations on the same pool.
                fresh_iter = pool.map(_evaluate_point, [p for _, p, _ in pending])
                opt_iter = pool.map(
                    _compute_point_optimum,
                    [
                        (representative[identity], optimum.config, optimum_cache_dir)
                        for identity in identities
                    ],
                ) if identities else iter(())
                fresh = list(fresh_iter)
                solved = list(opt_iter)
        else:
            fresh = [_evaluate_point(p) for _, p, _ in pending]
            solved = [
                optimum.optimum(representative[identity].build_instance())
                for identity in identities
            ]
        for (position, _point, key), record in zip(pending, fresh):
            records[position] = record

    if optimum is not None:
        for identity, optimum_record in zip(identities, solved):
            optimum.store(optimum_record)
            for position in needs_optimum[identity]:
                records[position] = records[position].with_optimum(
                    optimal_stall=max(optimum_record.stall_time, 0),
                    optimal_elapsed=optimum_record.elapsed_time,
                    solve_seconds=optimum_record.solve_seconds,
                    solver_key=optimum.config.key(),
                )

    if cache is not None:
        written = set()
        for position, _point, key in pending:
            cache.put(key, records[position])
            written.add(position)
        if optimum is not None:
            # Upgrade previously cached records that gained an optimum now.
            for positions in needs_optimum.values():
                for position in positions:
                    if position not in written and keys[position] is not None:
                        cache.put(keys[position], records[position])

    return [record for record in records if record is not None], cached_points


def _make_optimum_service(
    enabled: bool,
    cache_dir,
    method: str,
    config: Optional[SolverConfig],
) -> Optional[OptimumService]:
    """The optimum service of a run (disk cache under ``<cache_dir>/optima``)."""
    if not enabled:
        return None
    optimum_dir = None if cache_dir is None else Path(cache_dir) / "optima"
    return OptimumService(optimum_dir, config or SolverConfig(method=method))


def run_experiments(
    spec: ExperimentSpec,
    *,
    workers: int = 0,
    cache_dir=None,
    optimum_config: Optional[SolverConfig] = None,
) -> ResultSet:
    """Run the full grid of ``spec`` and return its ordered :class:`ResultSet`.

    ``workers > 1`` fans the uncached points out over that many processes;
    output order (and therefore the JSON/CSV documents) is identical to the
    serial run.  ``cache_dir`` enables the per-point result cache (and the
    optimum cache under ``<cache_dir>/optima`` when the spec computes
    optima).  ``optimum_config`` overrides the solver configuration derived
    from ``spec.optimum_method``.
    """
    optimum = _make_optimum_service(
        spec.compute_optimum, cache_dir, spec.optimum_method, optimum_config
    )
    records, cached_points = _execute_points(
        spec.points(), workers=workers, cache_dir=cache_dir, optimum=optimum
    )
    return ResultSet(
        name=spec.name,
        records=tuple(records),
        workers=workers,
        cached_points=cached_points,
    )


def evaluate_instances(
    labeled_instances: Iterable[Tuple[str, ProblemInstance]],
    algorithms: Sequence[str],
    *,
    workers: int = 0,
    engine: str = "indexed",
    cache_dir=None,
    compute_optimum: bool = False,
    optimum_method: str = "auto",
    optimum_config: Optional[SolverConfig] = None,
) -> ResultSet:
    """Evaluate algorithm specs over prebuilt instances (benchmark entry point).

    The benchmark scripts construct instances programmatically (adversarial
    families, paper examples) that have no workload-spec form; this runs the
    same batched machinery over ``(label, instance)`` pairs.  Instances are
    pickled to the workers when ``workers > 1``.  ``compute_optimum=True``
    attaches every instance's optimum (one deduplicated solve per instance,
    shared by all algorithms) exactly as in :func:`run_experiments`.
    """
    points = [
        ExperimentPoint(
            algorithm=algorithm,
            engine=engine,
            label=f"{label} alg={algorithm}",
            instance=instance,
            cache_size=instance.cache_size,
            fetch_time=instance.fetch_time,
            disks=instance.num_disks,
        )
        for label, instance in labeled_instances
        for algorithm in algorithms
    ]
    optimum = _make_optimum_service(
        compute_optimum, cache_dir, optimum_method, optimum_config
    )
    records, cached_points = _execute_points(
        points, workers=workers, cache_dir=cache_dir, optimum=optimum
    )
    return ResultSet(
        name="ad-hoc",
        records=tuple(records),
        workers=workers,
        cached_points=cached_points,
    )
