"""Batched experiment runner: declarative grids, pluggable backends, durable store.

This is the scale harness the benchmark scripts and the ``repro sweep`` /
``repro ratios`` commands drive (see DESIGN.md §6/§8).  It replaces the
serial :func:`repro.analysis.sweep.run_sweep` loop as the way experiments
are executed:

* **Declarative grids** — an :class:`ExperimentSpec` names workload specs
  (the portable strings of :mod:`repro.workloads.spec`), cache sizes, fetch
  times, disk counts, seeds and algorithm specs (the typed strings of
  :mod:`repro.algorithms.registry`); the runner expands the cross product
  into :class:`ExperimentPoint` s.

* **Pluggable execution** — points are independent, so they run on any
  :mod:`~repro.analysis.backends` executor (``serial``/``thread``/
  ``process``/``remote``, selected by ``ExperimentSpec(backend=...)`` or
  the CLI ``--backend``; ``auto`` fans out over processes when
  ``workers > 1``, and ``remote`` serves chunks to pull-based ``repro
  worker`` processes).
  Determinism is preserved by construction: a point is regenerated from its
  spec inside the worker (all workload generators take explicit seeds), and
  results are collected in grid order regardless of completion order, so
  every backend emits byte-identical JSON.  A failing point surfaces as a
  :class:`~repro.errors.PointEvaluationError` naming the exact grid point.

* **Durable run store** — with a cache directory (or an explicit
  :class:`~repro.analysis.store.RunStore`), every point's record persists
  in one WAL-mode SQLite file, keyed by a SHA-256 fingerprint of the
  *instance content* (sequence, cache size, fetch time, layout, warm set),
  the canonical algorithm spec and the engine.  Records are written as they
  complete, and each declared grid registers a sweep manifest, so a killed
  sweep keeps its progress and :func:`prepare_sweep` (``repro sweep
  --resume``) reports exactly what remains.

* **Optimum pipeline** — ``ExperimentSpec(compute_optimum=True)`` routes
  every point's instance through the optimum service
  (:mod:`repro.lp.service`): solves are deduplicated per instance (one LP
  for all algorithms sharing it), dispatched *interleaved with* the
  algorithm simulations on the same backend, persisted in the run store,
  and attached to every record (``optimal_stall``/``optimal_elapsed`` plus
  the solve wall time).  Stored simulation records that predate the optimum
  are upgraded in place; re-running a warmed grid performs no LP solve at
  all.

* **Uniform emission** — every point evaluates to one typed
  :class:`~repro.analysis.results.RunRecord`; the run returns them as a
  :class:`~repro.analysis.results.ResultSet` with uniform row/JSON/CSV
  emission and column selection, the same model the ratio harness and the
  legacy sweep produce.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..algorithms.registry import canonicalize_algorithm_spec, make_algorithm
from ..disksim.executor import canonical_engine, simulate_with_engine
from ..disksim.instance import ProblemInstance
from ..disksim.vector import numpy_available, require_numpy, run_batch
from ..errors import ConfigurationError, PointEvaluationError
from ..lp.canonical import instance_fingerprint as _canonical_fingerprint
from ..lp.service import OptimumRecord, OptimumService, SolverConfig
from ..workloads.spec import (
    build_workload_instance,
    get_layout_builder,
    with_spec_params,
    workload_accepts,
)
from .backends import (
    ExecutionBackend,
    SerialBackend,
    make_backend,
    resolve_backend_name,
)
from .results import ResultSet, RunRecord
from .store import RunStore, SweepProgress, store_path_for

__all__ = [
    "ExperimentSpec",
    "ExperimentPoint",
    "ExperimentRun",
    "instance_fingerprint",
    "point_cache_key",
    "prepare_sweep",
    "run_experiments",
    "evaluate_instances",
    "sweep_key_for",
]

logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------------------
# grid declaration
# ---------------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment grid.

    The cross product ``workloads x seeds x disks x layouts x cache_sizes x
    fetch_times x algorithms`` defines the points.  ``seeds`` is applied by
    rewriting the workload spec's ``seed`` parameter for workloads whose
    schema documents one; deterministic generators collapse the seed axis to
    a single point (the typed registry would reject an injected key they
    don't accept, and re-running them per seed would duplicate identical
    rows).  Leave it at ``(None,)`` to take every spec verbatim.  ``layouts`` names block
    placements from :data:`repro.workloads.spec.LAYOUT_BUILDERS`; at
    ``disks == 1`` placement is irrelevant, so only the first layout is
    emitted there (no duplicate points).

    ``backend`` selects the execution backend (``auto | serial | thread |
    process | remote``; ``auto`` means serial at ``workers <= 1`` and
    process fan-out otherwise).  ``compute_optimum=True`` additionally solves every point's
    instance optimum through the optimum service (one deduplicated solve
    per instance, method ``optimum_method`` for multi-disk instances) and
    attaches ``optimal_stall``/``optimal_elapsed``/solve wall time to every
    record, turning the grid into a ratio experiment.
    """

    name: str
    workloads: Tuple[str, ...]
    cache_sizes: Tuple[int, ...]
    fetch_times: Tuple[int, ...]
    algorithms: Tuple[str, ...]
    disks: Tuple[int, ...] = (1,)
    seeds: Tuple[Optional[int], ...] = (None,)
    layouts: Tuple[str, ...] = ("striped",)
    engine: str = "loop"
    backend: str = "auto"
    compute_optimum: bool = False
    optimum_method: str = "auto"

    def __post_init__(self):
        SolverConfig(method=self.optimum_method)  # validate eagerly
        resolve_backend_name(self.backend, 0)  # reject unknown backends here
        object.__setattr__(self, "engine", canonical_engine(self.engine))
        for axis in (
            "workloads", "cache_sizes", "fetch_times", "algorithms",
            "disks", "seeds", "layouts",
        ):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
        if not all(
            [self.workloads, self.cache_sizes, self.fetch_times, self.algorithms,
             self.disks, self.seeds, self.layouts]
        ):
            raise ConfigurationError("every grid axis needs at least one entry")
        for layout in self.layouts:
            get_layout_builder(layout)  # fail at construction, not in a worker
        for algorithm in self.algorithms:
            # Construct (and discard) each algorithm: building is cheap and,
            # unlike a schema-only parse, validates nested component specs
            # (combination:delay=.../alt=...) before any worker starts.
            make_algorithm(algorithm)

    def points(self) -> List["ExperimentPoint"]:
        """The grid points in deterministic (nested-loop) order."""
        out: List[ExperimentPoint] = []
        for workload in self.workloads:
            seedable = workload_accepts(workload, "seed")
            # A workload without a seed parameter regenerates identically for
            # every seed; collapse the axis so no duplicate points are emitted.
            for seed in self.seeds if seedable else self.seeds[:1]:
                if seed is None or not seedable:
                    spec = workload
                else:
                    spec = with_spec_params(workload, seed=seed)
                for disks in self.disks:
                    layouts = self.layouts if disks > 1 else self.layouts[:1]
                    for layout in layouts:
                        for cache_size in self.cache_sizes:
                            for fetch_time in self.fetch_times:
                                for algorithm in self.algorithms:
                                    out.append(
                                        ExperimentPoint(
                                            workload=spec,
                                            cache_size=cache_size,
                                            fetch_time=fetch_time,
                                            disks=disks,
                                            layout=layout,
                                            algorithm=algorithm,
                                            engine=self.engine,
                                        )
                                    )
        return out


@dataclass(frozen=True)
class ExperimentPoint:
    """One (instance, algorithm) evaluation, described portably.

    Either ``workload`` (a spec string; the instance is regenerated in the
    worker) or ``instance`` (a prebuilt :class:`ProblemInstance`, pickled to
    the worker — used by benchmark scripts whose instances have no spec
    form) must be set.
    """

    workload: Optional[str] = None
    cache_size: int = 16
    fetch_time: int = 8
    disks: int = 1
    layout: str = "striped"
    algorithm: str = "aggressive"
    engine: str = "loop"
    label: Optional[str] = None
    instance: Optional[ProblemInstance] = field(default=None, compare=False)

    def build_instance(self) -> ProblemInstance:
        """The problem instance of this point (built or passed through)."""
        if self.instance is not None:
            return self.instance
        if self.workload is None:
            raise ConfigurationError("ExperimentPoint needs a workload spec or an instance")
        return build_workload_instance(
            self.workload,
            cache_size=self.cache_size,
            fetch_time=self.fetch_time,
            disks=self.disks,
            layout=self.layout,
        )

    def describe(self) -> str:
        """Stable human-readable label of the point."""
        if self.label is not None:
            return self.label
        placement = f" layout={self.layout}" if self.disks > 1 else ""
        return (
            f"{self.workload} k={self.cache_size} F={self.fetch_time} "
            f"D={self.disks}{placement} alg={self.algorithm}"
        )

    def recorded_layout(self) -> Optional[str]:
        """The layout name a record carries (None where placement is moot)."""
        if self.workload is not None and self.disks > 1:
            return self.layout
        return None


# ---------------------------------------------------------------------------------
# fingerprints and identity
# ---------------------------------------------------------------------------------


def instance_fingerprint(instance: ProblemInstance) -> str:
    """SHA-256 fingerprint of the instance *content*.

    Delegates to the canonical helper of :mod:`repro.lp.canonical` (shared
    with the optimum service and the brute-force oracle), so equal — or
    optimum-equivalent, e.g. differing only in the names of never-requested
    warm blocks — instances produced by different code paths share cache
    entries.
    """
    return _canonical_fingerprint(instance)


def _instance_identity(point: ExperimentPoint) -> str:
    """The *instance* identity of a point (algorithm and engine stripped).

    Spec-described points are keyed by their grid coordinates — the spec
    string regenerates the instance deterministically, and hashing the
    coordinates avoids building every instance serially in the parent just
    to compute keys.  Prebuilt-instance points (already materialised, so
    fingerprinting costs no extra build) are keyed by canonical content,
    letting equal instances share entries across labels.  Shared by the
    store key and the optimum-solve deduplication, so the two can never
    drift apart.
    """
    if point.workload is not None:
        # Layout only shapes the instance when there is more than one disk;
        # leaving it out of the D=1 identity lets those entries be shared.
        placement = f";layout={point.layout}" if point.disks > 1 else ""
        return (
            f"spec={point.workload};k={point.cache_size};F={point.fetch_time};"
            f"D={point.disks}{placement}"
        )
    return "content=" + _canonical_fingerprint(point.build_instance())


def point_cache_key(point: ExperimentPoint) -> str:
    """Store key of a point: instance identity x canonical algorithm x engine.

    The algorithm identity is the *canonical* spec, so ``delay:3`` and
    ``delay:d=3`` share entries; likewise the engine is canonicalized, so
    ``engine="indexed"`` and ``engine="loop"`` share entries.
    """
    algorithm = canonicalize_algorithm_spec(point.algorithm)
    engine = canonical_engine(point.engine)
    return hashlib.sha256(
        f"{_instance_identity(point)};alg={algorithm};engine={engine}".encode()
    ).hexdigest()


def sweep_key_for(spec: ExperimentSpec, solver_key: Optional[str] = None) -> str:
    """Deterministic manifest key of a declared grid (+ optimum config).

    Hashes every grid-defining field of the spec plus the solver
    configuration key (for optimum sweeps), so the same declaration always
    resumes the same manifest while any change to the grid starts a new one.
    """
    payload = {
        "name": spec.name,
        "workloads": list(spec.workloads),
        "cache_sizes": list(spec.cache_sizes),
        "fetch_times": list(spec.fetch_times),
        "algorithms": list(spec.algorithms),
        "disks": list(spec.disks),
        "seeds": list(spec.seeds),
        "layouts": list(spec.layouts),
        "engine": spec.engine,
        "solver": solver_key,
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


# ---------------------------------------------------------------------------------
# worker entry points
# ---------------------------------------------------------------------------------


def _evaluate_point(point: ExperimentPoint) -> RunRecord:
    """Worker entry: simulate one point and return its typed record.

    Module-level (picklable) so it can run inside a pool; everything it
    needs travels inside the :class:`ExperimentPoint`.  Any failure is
    re-raised as a :class:`PointEvaluationError` naming the grid point, so
    a parallel sweep's traceback says exactly which point died.
    """
    try:
        instance = point.build_instance()
        algorithm = make_algorithm(point.algorithm)
        result, engine = simulate_with_engine(instance, algorithm, engine=point.engine)
    except Exception as exc:
        raise PointEvaluationError(
            f"experiment point [{point.describe()}] failed: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if result.engine_reason is not None:
        logger.debug(
            "point [%s]: vector engine ineligible, ran %s: %s",
            point.describe(),
            engine,
            result.engine_reason,
        )
    return RunRecord.from_simulation(
        result,
        point=point.describe(),
        algorithm_spec=point.algorithm,
        workload=point.workload,
        layout=point.recorded_layout(),
        engine=engine,
    )


def _evaluate_batch(points: Tuple[ExperimentPoint, ...]) -> List[RunRecord]:
    """Worker entry: run one vectorizable batch through the vector kernel.

    The planner (:func:`_plan_execution_units`) only submits batches whose
    points it pre-screened as vector-eligible, but coverage is re-checked
    per pair inside :func:`~repro.disksim.vector.run_batch`, which falls
    back to the loop engine for anything the kernel does not handle — each
    record's ``engine`` field reports what actually ran.  Results come back
    in submission (grid) order.
    """
    try:
        pairs = [(point.build_instance(), make_algorithm(point.algorithm)) for point in points]
        outcomes = run_batch(pairs)
    except Exception as exc:
        raise PointEvaluationError(
            f"vector batch of {len(points)} points (first: "
            f"[{points[0].describe()}]) failed: {type(exc).__name__}: {exc}"
        ) from exc
    records = []
    for point, (instance, _), outcome in zip(points, pairs, outcomes):
        records.append(
            RunRecord(
                point=point.describe(),
                algorithm=outcome.policy_name,
                algorithm_spec=point.algorithm,
                metrics=outcome.metrics,
                workload=point.workload,
                cache_size=instance.cache_size,
                fetch_time=instance.fetch_time,
                disks=instance.num_disks,
                layout=point.recorded_layout(),
                engine=outcome.engine,
            )
        )
    return records


def _compute_point_optimum(
    task: Tuple[ExperimentPoint, SolverConfig, Optional[str]]
) -> OptimumRecord:
    """Worker entry: compute (or fetch from the shared store) one optimum.

    Runs interleaved with :func:`_evaluate_point` on the same backend, so
    optimum solves proceed alongside algorithm simulations.  The
    worker-local :class:`OptimumService` consults the shared run store
    first — a warmed store makes this a fingerprint lookup, never an LP
    solve.  Failures name the representative grid point.
    """
    point, config, store_path = task
    try:
        if store_path is None:
            return OptimumService(config=config).optimum(point.build_instance())
        with RunStore(store_path) as store:
            return OptimumService(config=config, store=store).optimum(point.build_instance())
    except Exception as exc:
        raise PointEvaluationError(
            f"optimum solve for point [{point.describe()}] failed: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def _run_task(task: Tuple[str, object]):
    """Dispatch one tagged task (``sim`` or ``opt``) to its worker entry.

    The runner submits simulations and optimum solves as one mixed task
    list, so a single backend interleaves both kinds across its workers.
    """
    kind, payload = task
    if kind == "sim":
        return _evaluate_point(payload)
    if kind == "simbatch":
        return _evaluate_batch(payload)
    return _compute_point_optimum(payload)


# ---------------------------------------------------------------------------------
# vector batch planning
# ---------------------------------------------------------------------------------

#: Algorithm families the vector kernel covers (single-disk plans only);
#: everything else falls back to the loop engine.
_VECTOR_FAMILIES = frozenset({"aggressive", "delay", "combination"})

#: A same-shape group smaller than this is not worth a stacked kernel pass
#: (the numpy setup overhead eats the win); its points run as ordinary
#: per-point tasks instead.
MIN_VECTOR_BATCH = 8

#: Ceiling on points per stacked pass: keeps worker task sizes (and the
#: kernel's working set) bounded so process backends still load-balance.
MAX_VECTOR_BATCH = 512


def _vector_eligible(point: ExperimentPoint) -> bool:
    """Cheap pre-screen: could the vector kernel cover this point?

    Positive answers are re-validated pair-by-pair inside
    :func:`~repro.disksim.vector.run_batch` (which degrades to the loop
    engine); a negative answer just routes the point to a per-point task.
    """
    if point.disks != 1:
        return False
    family = canonicalize_algorithm_spec(point.algorithm).split(":", 1)[0]
    return family in _VECTOR_FAMILIES


def _vector_bucket_key(point: ExperimentPoint) -> Tuple[object, ...]:
    """Shape-bucket key: points sharing it stack into one kernel pass.

    Spec-described points bucket by their workload spec with the seed
    normalised away (same family and parameters ⇒ same sequence length and
    block universe size), prebuilt instances by their materialised shape —
    plus ``k``, ``F`` and the canonical algorithm, so one batch is "the same
    grid point at many seeds", the common case of a ratio sweep.
    """
    if point.workload is not None:
        spec = point.workload
        if workload_accepts(spec, "seed"):
            spec = with_spec_params(spec, seed=0)
        shape = f"spec={spec}"
    else:
        instance = point.build_instance()  # prebuilt: already materialised
        shape = f"n={instance.num_requests};blocks={len(instance.sequence.distinct_blocks)}"
    return (
        shape,
        point.cache_size,
        point.fetch_time,
        canonicalize_algorithm_spec(point.algorithm),
    )


def _plan_execution_units(pending):
    """Group pending ``(position, point, key)`` triples into execution units.

    Returns ``[(kind, items), ...]`` where ``kind`` is ``"sim"`` (one item,
    one :func:`_evaluate_point` task) or ``"simbatch"`` (one stacked
    :func:`_evaluate_batch` task for a same-shape bucket).  Every pending
    triple lands in exactly one unit; units appear in first-occurrence grid
    order and each bucket keeps its items in grid order, so zipping the
    streamed results against the units reproduces the serial order exactly.
    Buckets smaller than :data:`MIN_VECTOR_BATCH` are demoted to per-point
    tasks, buckets larger than :data:`MAX_VECTOR_BATCH` are chunked.  With
    numpy unavailable, ``engine="vector"`` points raise
    :class:`~repro.errors.ConfigurationError` here — before any worker
    starts — while ``engine="auto"`` points degrade to loop tasks silently.
    """
    have_numpy = numpy_available()
    units = []
    buckets: Dict[Tuple[object, ...], List] = {}
    for item in pending:
        _position, point, _key = item
        engine = canonical_engine(point.engine)
        if engine == "vector" and not have_numpy:
            require_numpy()
        if engine in ("vector", "auto") and have_numpy and _vector_eligible(point):
            bucket = _vector_bucket_key(point)
            group = buckets.get(bucket)
            if group is None:
                group = buckets[bucket] = [item]
                units.append(("simbatch", group))
            else:
                group.append(item)
        else:
            units.append(("sim", [item]))
    planned = []
    for kind, items in units:
        if kind == "sim" or len(items) < MIN_VECTOR_BATCH:
            planned.extend(("sim", [item]) for item in items)
        else:
            planned.extend(
                ("simbatch", items[start:start + MAX_VECTOR_BATCH])
                for start in range(0, len(items), MAX_VECTOR_BATCH)
            )
    return planned


# ---------------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------------

#: Backwards-compatible name: runner invocations return the unified
#: :class:`~repro.analysis.results.ResultSet` model.
ExperimentRun = ResultSet


def _execute_points(
    points: Sequence[ExperimentPoint],
    *,
    backend: ExecutionBackend,
    store: Optional[RunStore] = None,
    optimum: Optional[OptimumService] = None,
    sweep_key: Optional[str] = None,
    keys: Optional[Sequence[str]] = None,
) -> Tuple[List[RunRecord], int, int]:
    """Evaluate ``points`` (store hits, then backend fan-out) in grid order.

    Fresh simulation records are persisted to the store *as they stream
    back* from the backend, so a killed run keeps every completed point.
    With an :class:`OptimumService`, optimum solves are deduplicated per
    instance identity and dispatched interleaved with the pending
    simulations; their results are attached to every record of that
    instance — including stored records that predate the optimum, which are
    upgraded in the store.  A stored record's optimum is trusted only when
    its recorded solver key matches this run's configuration; records
    solved under a different configuration are re-attached through the
    (config-keyed) optimum store.

    Returns ``(records, cached_points, optimum_requests)``.
    """
    records: List[Optional[RunRecord]] = [None] * len(points)
    if keys is None:
        keys = [
            point_cache_key(point) if store is not None else None
            for point in points
        ]
    pending: List[Tuple[int, ExperimentPoint, Optional[str]]] = []
    needs_optimum: Dict[str, List[int]] = {}
    representative: Dict[str, ExperimentPoint] = {}
    cached_points = 0

    def request_optimum(position: int, point: ExperimentPoint) -> None:
        identity = _instance_identity(point)
        needs_optimum.setdefault(identity, []).append(position)
        representative.setdefault(identity, point)

    for position, point in enumerate(points):
        key = keys[position]
        if store is not None:
            hit = store.get_run(key)
            if hit is not None:
                # The stored metrics are content-determined, but the identity
                # fields belong to whichever run wrote the entry; restore the
                # current point's identity so labels stay correct when an
                # entry is shared across labels.
                records[position] = hit.with_identity(
                    point=point.describe(),
                    workload=point.workload,
                    algorithm_spec=point.algorithm,
                    layout=point.recorded_layout(),
                )
                cached_points += 1
                if optimum is not None and (
                    hit.optimal_elapsed is None
                    or hit.optimum_solver_key != optimum.config.key()
                ):
                    request_optimum(position, point)
                continue
        pending.append((position, point, key))
        if optimum is not None:
            request_optimum(position, point)

    identities = list(needs_optimum)
    # Detached workers (the remote backend) may not share the parent's
    # filesystem, and letting them open the store would also race their
    # nondeterministic solve_seconds against the parent's; the parent
    # persists every optimum itself via ``optimum.store`` below.
    store_path = (
        None if store is None or backend.detached_workers else str(store.path)
    )
    # On the serial backend the parent's own service (open store connection,
    # in-memory cache, `solves` accounting) is right there — route the
    # solves through it directly instead of opening a store per task.
    direct_optimum = optimum is not None and isinstance(backend, SerialBackend)
    units = _plan_execution_units(pending)
    tasks: List[Tuple[str, object]] = [
        ("sim", items[0][1]) if kind == "sim"
        else ("simbatch", tuple(item[1] for item in items))
        for kind, items in units
    ]
    if not direct_optimum:
        tasks.extend(
            ("opt", (representative[identity], optimum.config, store_path))
            for identity in identities
        )

    solved: List[OptimumRecord] = []
    if tasks:
        results = backend.map(_run_task, tasks)
        # Simulation results stream back first (submission order); persist
        # each one immediately so an interrupted run loses no progress.  A
        # "sim" unit yields one record, a "simbatch" unit one record per
        # point (in the unit's grid order).
        for (kind, items), result in zip(units, results):
            unit_records = [result] if kind == "sim" else result
            for (position, _point, key), record in zip(items, unit_records):
                records[position] = record
                if store is not None:
                    store.put_run(key, record)
        solved = list(results)
    if direct_optimum:
        solved = [
            optimum.optimum(representative[identity].build_instance())
            for identity in identities
        ]

    if optimum is not None:
        for identity, optimum_record in zip(identities, solved):
            optimum.store(optimum_record)
            for position in needs_optimum[identity]:
                records[position] = records[position].with_optimum(
                    optimal_stall=max(optimum_record.stall_time, 0),
                    optimal_elapsed=optimum_record.elapsed_time,
                    solve_seconds=optimum_record.solve_seconds,
                    solver_key=optimum.config.key(),
                )
        if store is not None:
            # Persist the optimum-carrying versions: fresh simulations are
            # re-written with their optimum attached, and previously stored
            # records that just gained (or re-keyed) an optimum are upgraded.
            store.put_runs(
                (keys[position], records[position])
                for positions in needs_optimum.values()
                for position in positions
                if keys[position] is not None
            )

    if store is not None and sweep_key is not None:
        store.mark_points_done(sweep_key, range(len(points)))

    return (
        [record for record in records if record is not None],
        cached_points,
        len(identities),
    )


def _make_optimum_service(
    enabled: bool,
    store: Optional[RunStore],
    method: str,
    config: Optional[SolverConfig],
) -> Optional[OptimumService]:
    """The optimum service of a run (persisted through the run store)."""
    if not enabled:
        return None
    return OptimumService(config=config or SolverConfig(method=method), store=store)


def _solver_key_for(
    spec: ExperimentSpec, optimum_config: Optional[SolverConfig]
) -> Optional[str]:
    """The solver-configuration key an optimum sweep of ``spec`` runs under."""
    if not spec.compute_optimum:
        return None
    return (optimum_config or SolverConfig(method=spec.optimum_method)).key()


def _register_sweep(
    spec: ExperimentSpec,
    store: RunStore,
    points: Sequence[ExperimentPoint],
    keys: Sequence[str],
    solver_key: Optional[str],
) -> str:
    """Register ``spec``'s manifest (reusing precomputed point keys).

    Reconciles the manifest against the stored records (a record counts as
    completion even if the writing run was killed before it could update
    the manifest) and returns the sweep key.
    """
    sweep_key = sweep_key_for(spec, solver_key)
    store.begin_sweep(
        sweep_key, spec.name,
        [(key, point.describe()) for key, point in zip(keys, points)],
    )
    store.reconcile_sweep(sweep_key, require_solver_key=solver_key)
    return sweep_key


def prepare_sweep(
    spec: ExperimentSpec,
    store: RunStore,
    *,
    optimum_config: Optional[SolverConfig] = None,
) -> SweepProgress:
    """Register ``spec``'s manifest in ``store`` and report its progress.

    The returned :class:`SweepProgress` names exactly the points a
    ``--resume`` run will still execute (see :func:`_register_sweep` for
    the reconcile semantics).
    """
    points = spec.points()
    keys = [point_cache_key(point) for point in points]
    sweep_key = _register_sweep(
        spec, store, points, keys, _solver_key_for(spec, optimum_config)
    )
    return store.sweep_progress(sweep_key)


def _resolve_backend_arg(
    backend, default_name: str, workers: int
) -> Tuple[ExecutionBackend, Optional[ExecutionBackend]]:
    """Resolve a backend argument (name or instance) to ``(backend, owned)``.

    A caller-provided :class:`ExecutionBackend` instance is used as-is and
    stays the caller's to close (``owned`` is None) — this is how ``repro
    coordinator`` threads an already-serving :class:`RemoteBackend` through
    the runner.  A name builds a backend the runner owns and closes.
    """
    if isinstance(backend, ExecutionBackend):
        return backend, None
    owned = make_backend(backend or default_name, workers)
    return owned, owned


def run_experiments(
    spec: ExperimentSpec,
    *,
    workers: int = 0,
    backend=None,
    cache_dir=None,
    store: Optional[RunStore] = None,
    optimum_config: Optional[SolverConfig] = None,
) -> ResultSet:
    """Run the full grid of ``spec`` and return its ordered :class:`ResultSet`.

    ``backend`` (default: the spec's) and ``workers`` select the execution
    backend — pass a name, or a live :class:`ExecutionBackend` instance
    (e.g. a serving :class:`~repro.analysis.remote.RemoteBackend`), which
    remains the caller's to close; output order (and therefore the JSON/CSV
    documents) is identical across all backends.  ``cache_dir`` opens the
    run store at ``<cache_dir>/runs.sqlite`` (``store`` passes one in
    directly), which persists every record and optimum, registers the sweep
    manifest, and makes warmed re-runs pure lookups.  ``optimum_config``
    overrides the solver configuration derived from ``spec.optimum_method``.
    """
    backend_obj, owned_backend = _resolve_backend_arg(backend, spec.backend, workers)
    owned_store = None
    if store is None and cache_dir is not None:
        store = owned_store = RunStore(store_path_for(cache_dir))
    try:
        optimum = _make_optimum_service(
            spec.compute_optimum, store, spec.optimum_method, optimum_config
        )
        points = spec.points()
        keys = None
        sweep_key = None
        if store is not None:
            keys = [point_cache_key(point) for point in points]
            sweep_key = _register_sweep(
                spec, store, points, keys, _solver_key_for(spec, optimum_config)
            )
        records, cached_points, optimum_requests = _execute_points(
            points,
            backend=backend_obj,
            store=store,
            optimum=optimum,
            sweep_key=sweep_key,
            keys=keys,
        )
        return ResultSet(
            name=spec.name,
            records=tuple(records),
            workers=workers,
            cached_points=cached_points,
            backend=backend_obj.name,
            optimum_requests=optimum_requests,
        )
    finally:
        if owned_backend is not None:
            owned_backend.close()
        if owned_store is not None:
            owned_store.close()


def evaluate_instances(
    labeled_instances: Iterable[Tuple[str, ProblemInstance]],
    algorithms: Sequence[str],
    *,
    workers: int = 0,
    backend="auto",
    engine: str = "loop",
    cache_dir=None,
    store: Optional[RunStore] = None,
    compute_optimum: bool = False,
    optimum_method: str = "auto",
    optimum_config: Optional[SolverConfig] = None,
) -> ResultSet:
    """Evaluate algorithm specs over prebuilt instances (benchmark entry point).

    The benchmark scripts construct instances programmatically (adversarial
    families, paper examples) that have no workload-spec form; this runs the
    same batched machinery over ``(label, instance)`` pairs.  Instances are
    pickled to the workers on the process backend.  ``compute_optimum=True``
    attaches every instance's optimum (one deduplicated solve per instance,
    shared by all algorithms) exactly as in :func:`run_experiments`.  Ad-hoc
    instance lists declare no sweep manifest, but their records and optima
    persist in the run store all the same.
    """
    points = [
        ExperimentPoint(
            algorithm=algorithm,
            engine=engine,
            label=f"{label} alg={algorithm}",
            instance=instance,
            cache_size=instance.cache_size,
            fetch_time=instance.fetch_time,
            disks=instance.num_disks,
        )
        for label, instance in labeled_instances
        for algorithm in algorithms
    ]
    backend_obj, owned_backend = _resolve_backend_arg(backend, "auto", workers)
    owned_store = None
    if store is None and cache_dir is not None:
        store = owned_store = RunStore(store_path_for(cache_dir))
    try:
        optimum = _make_optimum_service(
            compute_optimum, store, optimum_method, optimum_config
        )
        records, cached_points, optimum_requests = _execute_points(
            points, backend=backend_obj, store=store, optimum=optimum
        )
        return ResultSet(
            name="ad-hoc",
            records=tuple(records),
            workers=workers,
            cached_points=cached_points,
            backend=backend_obj.name,
            optimum_requests=optimum_requests,
        )
    finally:
        if owned_backend is not None:
            owned_backend.close()
        if owned_store is not None:
            owned_store.close()
