"""The SQLite-backed run store: durable, queryable, concurrent-writer safe.

Experiment persistence used to be thousands of tiny per-point JSON files
(one ``<sha>.json`` per simulation under the cache directory, one per
optimum under ``optima/``) — unscalable for large grids and opaque to
queries.  :class:`RunStore` replaces that with **one** SQLite file that is
the shared persistence layer of the whole experiment pipeline:

* **Runs** — every :class:`~repro.analysis.results.RunRecord` is stored
  under its point cache key with the identity columns (workload, algorithm
  spec, layout, engine, ``k``/``F``/``D``) indexed for querying, and the
  record body as the same canonical sorted-key JSON the legacy per-point
  files held, so the byte-identical emission contract survives.
* **Optima** — :class:`~repro.lp.service.OptimumRecord` s keyed by their
  canonical instance fingerprint; the optimum service reads and writes them
  through the duck-typed ``get_optimum``/``put_optimum`` pair.
* **Sweep manifest** — each declared grid registers its points under a
  deterministic sweep key; points are marked ``done`` as their records
  land, and :meth:`reconcile_sweep` re-derives completion from the stored
  runs, so a killed sweep loses no progress accounting.  ``repro sweep
  --resume`` reads :meth:`sweep_progress` to report exactly what remains.
* **Operations** — :meth:`stats`, :meth:`gc` and :meth:`import_json_cache`
  (the migration path from legacy JSON cache directories) back the
  ``repro store`` CLI subcommand.

Concurrency: the database runs in WAL mode with a generous busy timeout;
every writer (the runner's parent process, pool workers persisting optima,
a second concurrent sweep) opens its own connection and transactions are
short single-statement batches, so concurrent writers serialize cleanly.
Writers of the same key write identical bytes (records are content-keyed),
which makes racing upserts idempotent.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..disksim.executor import canonical_engine
from ..errors import StoreError
from ..lp.service import OptimumRecord
from .results import RunRecord

__all__ = [
    "RunStore",
    "SweepProgress",
    "ImportReport",
    "STORE_FILENAME",
    "store_path_for",
]

#: Filename of the store inside a cache directory (``--cache-dir`` keeps its
#: historical meaning: a directory; the database lives in one file under it).
STORE_FILENAME = "runs.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    key        TEXT PRIMARY KEY,
    workload   TEXT,
    algorithm  TEXT NOT NULL,
    algorithm_spec TEXT NOT NULL,
    layout     TEXT,
    engine     TEXT NOT NULL,
    disks      INTEGER NOT NULL,
    cache_size INTEGER NOT NULL,
    fetch_time INTEGER NOT NULL,
    has_optimum INTEGER NOT NULL DEFAULT 0,
    optimum_solver_key TEXT,
    record     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_workload  ON runs (workload);
CREATE INDEX IF NOT EXISTS idx_runs_algorithm ON runs (algorithm_spec);
CREATE INDEX IF NOT EXISTS idx_runs_layout    ON runs (layout);
CREATE INDEX IF NOT EXISTS idx_runs_engine    ON runs (engine);
CREATE TABLE IF NOT EXISTS optima (
    fingerprint TEXT PRIMARY KEY,
    solver_key  TEXT NOT NULL,
    record      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_key  TEXT PRIMARY KEY,
    name       TEXT NOT NULL,
    num_points INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS sweep_points (
    sweep_key  TEXT NOT NULL,
    position   INTEGER NOT NULL,
    point_key  TEXT NOT NULL,
    label      TEXT NOT NULL,
    status     TEXT NOT NULL DEFAULT 'pending',
    PRIMARY KEY (sweep_key, position)
);
CREATE INDEX IF NOT EXISTS idx_sweep_points_key ON sweep_points (sweep_key, point_key);
"""


def store_path_for(cache_dir) -> Path:
    """The store's database path under a runner cache directory."""
    return Path(cache_dir) / STORE_FILENAME


@dataclass(frozen=True)
class SweepProgress:
    """Completion state of one registered sweep manifest."""

    sweep_key: str
    name: str
    total: int
    done: int
    remaining_labels: Tuple[str, ...]

    @property
    def remaining(self) -> int:
        """How many grid points have not completed yet."""
        return self.total - self.done

    @property
    def complete(self) -> bool:
        """Whether every point of the sweep has a stored record."""
        return self.total > 0 and self.done == self.total

    def describe(self) -> str:
        """One-line ``done/total`` summary for CLI reporting."""
        return f"{self.name!r}: {self.done}/{self.total} points complete, {self.remaining} remaining"


@dataclass(frozen=True)
class ImportReport:
    """Outcome of a JSON-cache migration: what was imported and skipped."""

    runs: int
    optima: int
    skipped: int

    def describe(self) -> str:
        """One-line import summary for CLI reporting."""
        return (
            f"imported {self.runs} run record(s) and {self.optima} optimum "
            f"record(s), skipped {self.skipped} unreadable file(s)"
        )


class RunStore:
    """One SQLite file holding runs, optima and sweep manifests.

    Open one per process (connections are cheap; the WAL file mediates
    concurrency).  The store is also the duck-typed persistence object the
    optimum service accepts (``get_optimum``/``put_optimum``), which is how
    run records and optimum records share a single durable file.
    """

    def __init__(self, path, *, timeout: float = 30.0):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = sqlite3.connect(self.path, timeout=timeout)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
            with self._conn:
                self._conn.executescript(_SCHEMA)
            self._migrate_legacy_engines()
        except sqlite3.Error as exc:
            # Surface as a library error so the CLI exits cleanly instead of
            # dumping a traceback when the file is corrupt or not SQLite.
            raise StoreError(f"cannot open run store at {self.path}: {exc}") from exc

    def _migrate_legacy_engines(self) -> None:
        """Rename the legacy ``'indexed'`` engine label to ``'loop'`` in place.

        Rows written before the engine axis grew the ``vector`` path carry
        ``engine='indexed'`` in both the indexed column and the JSON body.
        Per-engine stats and queries group by the canonical name, so the
        store rewrites such rows once at open time (idempotent: later opens
        find nothing to do).  A body that no longer parses keeps its bytes
        — only the column is fixed — matching ``get_run``'s treatment of
        corrupt rows as cache misses.
        """
        rows = self._conn.execute(
            "SELECT key, record FROM runs WHERE engine = 'indexed'"
        ).fetchall()
        if not rows:
            return
        updates = []
        for key, body in rows:
            try:
                payload = json.loads(body)
                payload["engine"] = "loop"
                body = json.dumps(payload, sort_keys=True)
            except (json.JSONDecodeError, TypeError, ValueError):
                pass
            updates.append((body, key))
        with self._conn:
            self._conn.executemany(
                "UPDATE runs SET engine = 'loop', record = ? WHERE key = ?", updates
            )

    # -- lifecycle ---------------------------------------------------------------------

    @contextmanager
    def _guarded(self):
        """Convert ``sqlite3`` failures into :class:`~repro.errors.StoreError`.

        Every public method runs its database work under this guard, so
        corruption discovered after open (a truncated page mid-file, a
        filesystem error) surfaces as a library error the CLI reports
        cleanly instead of an unhandled ``sqlite3`` traceback.
        """
        try:
            yield
        except sqlite3.Error as exc:
            raise StoreError(f"run store {self.path} failed: {exc}") from exc

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RunStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, *_exc) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # -- run records -------------------------------------------------------------------

    def get_run(self, key: str) -> Optional[RunRecord]:
        """The stored record under ``key``, or None (corrupt rows are misses)."""
        with self._guarded():
            row = self._conn.execute(
                "SELECT record FROM runs WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        try:
            return RunRecord.from_json_dict(json.loads(row[0]))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def put_run(self, key: str, record: RunRecord) -> None:
        """Upsert one record under ``key`` (see :meth:`put_runs`)."""
        self.put_runs([(key, record)])

    def put_runs(self, items: Iterable[Tuple[str, RunRecord]]) -> None:
        """Upsert a batch of ``(key, record)`` pairs in one transaction.

        The record body is canonical sorted-key JSON — the same bytes the
        legacy per-point cache files held — so identical content written by
        racing runs is idempotent.
        """
        rows = [
            (
                key,
                record.workload,
                record.algorithm,
                record.algorithm_spec,
                record.layout,
                record.engine,
                record.disks,
                record.cache_size,
                record.fetch_time,
                int(record.optimal_elapsed is not None),
                record.optimum_solver_key,
                json.dumps(record.to_json_dict(), sort_keys=True),
            )
            for key, record in items
        ]
        with self._guarded(), self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO runs VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )

    def query_runs(
        self,
        *,
        workload: Optional[str] = None,
        algorithm: Optional[str] = None,
        layout: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> List[RunRecord]:
        """Records matching the given identity columns (indexed lookups).

        ``algorithm`` matches either the resolved name or the spec string;
        ``engine`` accepts any canonical engine name or alias (querying for
        ``"indexed"`` finds the migrated ``"loop"`` rows).  Results come
        back in deterministic (key) order.
        """
        clauses, params = [], []
        if workload is not None:
            clauses.append("workload = ?")
            params.append(workload)
        if algorithm is not None:
            clauses.append("(algorithm = ? OR algorithm_spec = ?)")
            params.extend([algorithm, algorithm])
        if layout is not None:
            clauses.append("layout = ?")
            params.append(layout)
        if engine is not None:
            clauses.append("engine = ?")
            params.append(canonical_engine(engine))
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._guarded():
            rows = self._conn.execute(
                f"SELECT record FROM runs {where} ORDER BY key", params
            ).fetchall()
        records = []
        for (body,) in rows:
            try:
                records.append(RunRecord.from_json_dict(json.loads(body)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue
        return records

    def count_runs(self) -> int:
        """How many run records the store holds."""
        with self._guarded():
            return self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    # -- optimum records (duck-typed persistence for OptimumService) -------------------

    def get_optimum(self, fingerprint: str) -> Optional[OptimumRecord]:
        """The stored optimum under ``fingerprint``, or None on miss/corruption."""
        with self._guarded():
            row = self._conn.execute(
                "SELECT record FROM optima WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        if row is None:
            return None
        try:
            return OptimumRecord.from_json_dict(json.loads(row[0]))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def put_optimum(self, record: OptimumRecord) -> None:
        """Upsert one optimum record under its canonical fingerprint."""
        with self._guarded(), self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO optima VALUES (?, ?, ?)",
                (
                    record.fingerprint,
                    record.solver_key,
                    json.dumps(record.as_json_dict(), sort_keys=True),
                ),
            )

    def count_optima(self) -> int:
        """How many optimum records the store holds."""
        with self._guarded():
            return self._conn.execute("SELECT COUNT(*) FROM optima").fetchone()[0]

    # -- sweep manifest ----------------------------------------------------------------

    def begin_sweep(
        self, sweep_key: str, name: str, labeled_keys: Sequence[Tuple[str, str]]
    ) -> None:
        """Register (or re-register) a sweep's points under ``sweep_key``.

        ``labeled_keys`` is the grid's ``(point_key, label)`` list in grid
        order.  Existing point rows keep their status (re-registering a
        partially complete sweep must not reset its progress).
        """
        with self._guarded(), self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO sweeps VALUES (?, ?, ?)",
                (sweep_key, name, len(labeled_keys)),
            )
            self._conn.executemany(
                "INSERT OR IGNORE INTO sweep_points (sweep_key, position, point_key, label) "
                "VALUES (?, ?, ?, ?)",
                [
                    (sweep_key, position, key, label)
                    for position, (key, label) in enumerate(labeled_keys)
                ],
            )

    def mark_points_done(self, sweep_key: str, positions: Iterable[int]) -> None:
        """Mark the given grid positions of ``sweep_key`` as completed."""
        with self._guarded(), self._conn:
            self._conn.executemany(
                "UPDATE sweep_points SET status = 'done' WHERE sweep_key = ? AND position = ?",
                [(sweep_key, position) for position in positions],
            )

    def reconcile_sweep(
        self, sweep_key: str, *, require_solver_key: Optional[str] = None
    ) -> None:
        """Re-derive point completion from the stored runs.

        A point is ``done`` when its record exists — and, for optimum
        sweeps (``require_solver_key`` set), when that record carries an
        optimum solved under exactly that configuration.  This is what
        makes ``--resume`` robust to a killed sweep: whatever records
        landed before the kill count as progress even if the manifest
        update never ran.

        Completion is derived from row *existence*, not from re-parsing
        every record body.  In the pathological case of a row whose body no
        longer parses (``get_run`` treats it as a miss), the report can
        over-count by that point — the run then simply re-simulates it and
        overwrites the row, so the store self-heals on the next pass.
        """
        condition = "1 = 1"
        params: List[object] = [sweep_key]
        if require_solver_key is not None:
            condition = "runs.has_optimum = 1 AND runs.optimum_solver_key = ?"
            params.append(require_solver_key)
        with self._guarded(), self._conn:
            self._conn.execute(
                f"""
                UPDATE sweep_points SET status = 'done'
                WHERE sweep_key = ? AND EXISTS (
                    SELECT 1 FROM runs
                    WHERE runs.key = sweep_points.point_key AND {condition}
                )
                """,
                params,
            )

    def sweep_progress(self, sweep_key: str) -> Optional[SweepProgress]:
        """The manifest state of ``sweep_key``, or None if never registered."""
        with self._guarded():
            return self._sweep_progress(sweep_key)

    def _sweep_progress(self, sweep_key: str) -> Optional[SweepProgress]:
        """:meth:`sweep_progress` body (callers hold the error guard)."""
        sweep = self._conn.execute(
            "SELECT name, num_points FROM sweeps WHERE sweep_key = ?", (sweep_key,)
        ).fetchone()
        if sweep is None:
            return None
        name, total = sweep
        done = self._conn.execute(
            "SELECT COUNT(*) FROM sweep_points WHERE sweep_key = ? AND status = 'done'",
            (sweep_key,),
        ).fetchone()[0]
        remaining = self._conn.execute(
            "SELECT label FROM sweep_points "
            "WHERE sweep_key = ? AND status != 'done' ORDER BY position",
            (sweep_key,),
        ).fetchall()
        return SweepProgress(
            sweep_key=sweep_key,
            name=name,
            total=total,
            done=done,
            remaining_labels=tuple(label for (label,) in remaining),
        )

    # -- operations (repro store) ------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Aggregate store statistics (the ``repro store stats`` payload)."""
        count = lambda sql, *params: self._conn.execute(sql, params).fetchone()[0]
        with self._guarded():
            payload: Dict[str, object] = {
                "path": str(self.path),
                "size_bytes": self.path.stat().st_size if self.path.exists() else 0,
                "runs": count("SELECT COUNT(*) FROM runs"),
                "runs_with_optimum": count("SELECT COUNT(*) FROM runs WHERE has_optimum = 1"),
                "distinct_workloads": count("SELECT COUNT(DISTINCT workload) FROM runs"),
                "distinct_algorithms": count("SELECT COUNT(DISTINCT algorithm_spec) FROM runs"),
                "optima": count("SELECT COUNT(*) FROM optima"),
                "sweeps": count("SELECT COUNT(*) FROM sweeps"),
                "sweep_points_done": count(
                    "SELECT COUNT(*) FROM sweep_points WHERE status = 'done'"
                ),
                "sweep_points_pending": count(
                    "SELECT COUNT(*) FROM sweep_points WHERE status != 'done'"
                ),
            }
            # One ``runs_engine_<name>`` column per engine that produced at
            # least one stored record (post-migration: never 'indexed').
            for name, num in self._conn.execute(
                "SELECT engine, COUNT(*) FROM runs GROUP BY engine ORDER BY engine"
            ).fetchall():
                payload[f"runs_engine_{name}"] = num
            return payload

    def gc(self) -> Dict[str, int]:
        """Drop completed sweep manifests and compact the database file.

        Run records and optima are never garbage-collected — they are the
        cache — but finished manifests are bookkeeping with no further use,
        and ``VACUUM`` returns their pages (and any other slack) to the
        filesystem.  Returns the removal/reclaim accounting.
        """
        with self._guarded():
            complete = [
                key
                for (key,) in self._conn.execute("SELECT sweep_key FROM sweeps").fetchall()
                if (progress := self._sweep_progress(key)) is not None and progress.complete
            ]
            points_removed = 0
            with self._conn:
                for key in complete:
                    points_removed += self._conn.execute(
                        "DELETE FROM sweep_points WHERE sweep_key = ?", (key,)
                    ).rowcount
                    self._conn.execute("DELETE FROM sweeps WHERE sweep_key = ?", (key,))
            before = self.path.stat().st_size
            self._conn.execute("VACUUM")
            return {
                "sweeps_removed": len(complete),
                "points_removed": points_removed,
                "reclaimed_bytes": max(0, before - self.path.stat().st_size),
            }

    def import_json_cache(self, directory) -> ImportReport:
        """Migrate a legacy per-point JSON cache directory into the store.

        ``<directory>/*.json`` files are parsed as run records (the file
        stem is the point cache key) and ``<directory>/optima/*.json`` as
        optimum records; each is re-serialized canonically, so every
        imported record round-trips byte-for-byte through
        :class:`~repro.analysis.results.RunRecord`.  Unreadable files are
        counted and skipped, never fatal.
        """
        directory = Path(directory)
        runs, optima, skipped = [], [], 0
        for path in sorted(directory.glob("*.json")):
            try:
                runs.append((path.stem, RunRecord.from_json_dict(json.loads(path.read_text()))))
            except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
                skipped += 1
        optima_dir = directory / "optima"
        if optima_dir.is_dir():
            for path in sorted(optima_dir.glob("*.json")):
                try:
                    optima.append(OptimumRecord.from_json_dict(json.loads(path.read_text())))
                except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
                    skipped += 1
        if runs:
            self.put_runs(runs)
        for record in optima:
            self.put_optimum(record)
        return ImportReport(runs=len(runs), optima=len(optima), skipped=skipped)
