"""The unified run-record result model.

Every experiment in this repository reduces to the same shape of fact: *one
algorithm spec ran over one problem instance under one engine and produced
these metrics (and, when an optimum was computed, these ratios)*.
Historically the runner, the ratio harness and the legacy sweep each encoded
that fact in their own row-dict dialect, so every new experiment re-invented
serialization.  This module is the single model they all produce and
consume:

* :class:`RunRecord` — one typed record: instance identity (workload spec,
  ``k``/``F``/``D``/layout), algorithm identity (resolved name + portable
  spec string), the engine, the full :class:`~repro.disksim.metrics.SimMetrics`,
  and the optional optimum / approximation ratios.
* :class:`ResultSet` — an ordered, named collection of records with uniform
  emission: flat rows for the table formatter (with column selection),
  deterministic sorted-key JSON, CSV, and the query helpers the benchmark
  scripts use (``metric``, ``ratios_for``, ``max_ratio_for``).

Records round-trip losslessly through :meth:`RunRecord.to_json_dict` /
:meth:`RunRecord.from_json_dict`; the runner's on-disk point cache and the
tests' equality round-trips both rely on that.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..disksim.metrics import SimMetrics

if TYPE_CHECKING:  # type-only: executor pulls in the whole engine stack
    from ..disksim.executor import SimulationResult

__all__ = ["RunRecord", "ResultSet", "RUN_RECORD_COLUMNS", "safe_ratio"]


def safe_ratio(value: int, reference: int) -> float:
    """``value / reference`` with the measurement convention for 0 optima."""
    if reference == 0:
        return 1.0 if value == 0 else float("inf")
    return value / reference


def _row_ratio(ratio: Optional[float]) -> object:
    """Flat-row rendering of a ratio: rounded, with ``inf`` as a string.

    ``json.dumps`` would otherwise emit the non-standard ``Infinity`` token
    (routine when the optimum has zero stall but the algorithm stalls),
    which strict RFC-8259 parsers reject — breaking the deterministic-JSON
    contract of :meth:`ResultSet.write_json`.
    """
    if ratio is None:
        return None
    if ratio == float("inf"):
        return "inf"
    return round(ratio, 6)


#: Canonical flat-row column order (identity, then metrics, then optimum).
RUN_RECORD_COLUMNS: Tuple[str, ...] = (
    "point",
    "workload",
    "cache_size",
    "fetch_time",
    "disks",
    "layout",
    "algorithm",
    "algorithm_spec",
    "engine",
    "num_requests",
    "stall_time",
    "elapsed_time",
    "num_fetches",
    "num_demand_fetches",
    "cache_hits",
    "cache_misses",
    "hit_rate",
    "peak_cache_used",
    "optimal_stall",
    "optimal_elapsed",
    "stall_ratio",
    "elapsed_ratio",
    "optimum_solve_seconds",
)


@dataclass(frozen=True)
class RunRecord:
    """One algorithm x instance x engine evaluation, fully described."""

    point: str
    algorithm: str
    algorithm_spec: str
    metrics: SimMetrics
    workload: Optional[str] = None
    cache_size: int = 0
    fetch_time: int = 0
    disks: int = 1
    layout: Optional[str] = None
    engine: str = "indexed"
    optimal_stall: Optional[int] = None
    optimal_elapsed: Optional[int] = None
    #: Wall-clock seconds the optimum attached to this record cost to solve
    #: (0.0 when it came from a cache hit *within the same solve*; cached
    #: records keep the original solve's cost).  None without an optimum.
    optimum_solve_seconds: Optional[float] = None
    #: Canonical :meth:`~repro.lp.service.SolverConfig.key` of the
    #: configuration that produced the attached optimum.  The runner only
    #: trusts a cached record's optimum when this matches the current run's
    #: configuration; otherwise the optimum is re-attached through the
    #: (config-keyed) optimum cache.
    optimum_solver_key: Optional[str] = None

    @classmethod
    def from_simulation(
        cls,
        result: "SimulationResult",
        *,
        point: str,
        algorithm_spec: Optional[str] = None,
        workload: Optional[str] = None,
        layout: Optional[str] = None,
        engine: str = "indexed",
        optimal_stall: Optional[int] = None,
        optimal_elapsed: Optional[int] = None,
        optimum_solve_seconds: Optional[float] = None,
    ) -> "RunRecord":
        """Build a record from a :class:`~repro.disksim.executor.SimulationResult`.

        The instance identity (``k``/``F``/``D``) is read off the result's
        instance; the algorithm spec defaults to the policy object's recorded
        registry spec (or its resolved name for directly constructed objects).
        """
        instance = result.instance
        return cls(
            point=point,
            algorithm=result.policy_name,
            algorithm_spec=algorithm_spec or result.policy_name,
            metrics=result.metrics,
            workload=workload,
            cache_size=instance.cache_size,
            fetch_time=instance.fetch_time,
            disks=instance.num_disks,
            layout=layout,
            engine=engine,
            optimal_stall=optimal_stall,
            optimal_elapsed=optimal_elapsed,
            optimum_solve_seconds=optimum_solve_seconds,
        )

    # -- derived quantities ----------------------------------------------------------

    @property
    def elapsed_ratio(self) -> Optional[float]:
        """Measured elapsed time over the optimum (None without an optimum)."""
        if self.optimal_elapsed is None:
            return None
        return safe_ratio(self.metrics.elapsed_time, self.optimal_elapsed)

    @property
    def stall_ratio(self) -> Optional[float]:
        """Measured stall time over the optimum (None without an optimum)."""
        if self.optimal_stall is None:
            return None
        return safe_ratio(self.metrics.stall_time, max(self.optimal_stall, 0))

    def matches_algorithm(self, algorithm: str) -> bool:
        """Whether ``algorithm`` names this record (resolved name or spec)."""
        return algorithm in (self.algorithm, self.algorithm_spec)

    # -- emission ----------------------------------------------------------------------

    def as_row(self) -> Dict[str, object]:
        """Flat row dictionary in :data:`RUN_RECORD_COLUMNS` order."""
        metrics = self.metrics
        return {
            "point": self.point,
            "workload": self.workload,
            "cache_size": self.cache_size,
            "fetch_time": self.fetch_time,
            "disks": self.disks,
            "layout": self.layout,
            "algorithm": self.algorithm,
            "algorithm_spec": self.algorithm_spec,
            "engine": self.engine,
            "num_requests": metrics.num_requests,
            "stall_time": metrics.stall_time,
            "elapsed_time": metrics.elapsed_time,
            "num_fetches": metrics.num_fetches,
            "num_demand_fetches": metrics.num_demand_fetches,
            "cache_hits": metrics.cache_hits,
            "cache_misses": metrics.cache_misses,
            "hit_rate": round(metrics.hit_rate, 6),
            "peak_cache_used": metrics.peak_cache_used,
            "optimal_stall": self.optimal_stall,
            "optimal_elapsed": self.optimal_elapsed,
            "stall_ratio": _row_ratio(self.stall_ratio),
            "elapsed_ratio": _row_ratio(self.elapsed_ratio),
            "optimum_solve_seconds": (
                None
                if self.optimum_solve_seconds is None
                else round(self.optimum_solve_seconds, 6)
            ),
        }

    def to_json_dict(self) -> Dict[str, object]:
        """Lossless JSON-safe encoding (see :meth:`from_json_dict`)."""
        return {
            "point": self.point,
            "workload": self.workload,
            "cache_size": self.cache_size,
            "fetch_time": self.fetch_time,
            "disks": self.disks,
            "layout": self.layout,
            "algorithm": self.algorithm,
            "algorithm_spec": self.algorithm_spec,
            "engine": self.engine,
            "metrics": self.metrics.as_dict(),
            "optimal_stall": self.optimal_stall,
            "optimal_elapsed": self.optimal_elapsed,
            "optimum_solve_seconds": self.optimum_solve_seconds,
            "optimum_solver_key": self.optimum_solver_key,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "RunRecord":
        """Rebuild a record from :meth:`to_json_dict` output."""
        return cls(
            point=str(payload["point"]),
            workload=payload.get("workload"),
            cache_size=int(payload["cache_size"]),
            fetch_time=int(payload["fetch_time"]),
            disks=int(payload["disks"]),
            layout=payload.get("layout"),
            algorithm=str(payload["algorithm"]),
            algorithm_spec=str(payload["algorithm_spec"]),
            engine=str(payload.get("engine", "indexed")),
            metrics=SimMetrics.from_dict(payload["metrics"]),
            optimal_stall=payload.get("optimal_stall"),
            optimal_elapsed=payload.get("optimal_elapsed"),
            optimum_solve_seconds=payload.get("optimum_solve_seconds"),
            optimum_solver_key=payload.get("optimum_solver_key"),
        )

    def with_optimum(
        self,
        *,
        optimal_stall: int,
        optimal_elapsed: int,
        solve_seconds: Optional[float] = None,
        solver_key: Optional[str] = None,
    ) -> "RunRecord":
        """Copy with the optimum (its solve cost and provenance) attached.

        Used by the runner to upgrade simulation records with the optimum
        service's results — including records that were cached before an
        optimum was ever requested for their instance.
        """
        return replace(
            self,
            optimal_stall=optimal_stall,
            optimal_elapsed=optimal_elapsed,
            optimum_solve_seconds=solve_seconds,
            optimum_solver_key=solver_key,
        )

    def with_identity(
        self,
        *,
        point: str,
        workload: Optional[str],
        algorithm_spec: str,
        layout: Optional[str],
    ) -> "RunRecord":
        """Copy with the identity fields replaced (cache-hit relabeling)."""
        return replace(
            self,
            point=point,
            workload=workload,
            algorithm_spec=algorithm_spec,
            layout=layout,
        )


@dataclass(frozen=True)
class ResultSet:
    """The ordered records of one experiment invocation.

    ``backend`` names the execution backend that ran the uncached points
    and ``optimum_requests`` counts the optimum computations the run
    dispatched (every one a store hit or an LP solve) — a fully warmed
    resume reports 0 for both it and :attr:`simulated_points`, which is the
    property the resume smoke tests assert.
    """

    name: str
    records: Tuple[RunRecord, ...]
    workers: int = 0
    cached_points: int = 0
    backend: str = "serial"
    optimum_requests: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(self.records))

    @property
    def simulated_points(self) -> int:
        """How many points were actually simulated (i.e. not cache hits).

        Meaningful on a full run result; filtered views (``for_algorithm``)
        keep the run-level ``cached_points``, so the difference is clamped
        at zero rather than going negative there.
        """
        return max(0, len(self.records) - self.cached_points)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    # -- queries ----------------------------------------------------------------------

    def points(self) -> List[str]:
        """Point labels in record order (duplicates preserved)."""
        return [record.point for record in self.records]

    def metric(self, metric: str) -> Dict[str, object]:
        """``{point label: value}`` of one flat-row column across all records."""
        return {record.point: record.as_row()[metric] for record in self.records}

    def for_algorithm(self, algorithm: str) -> "ResultSet":
        """The records whose resolved name or spec equals ``algorithm``."""
        return ResultSet(
            name=self.name,
            records=tuple(r for r in self.records if r.matches_algorithm(algorithm)),
            workers=self.workers,
            cached_points=self.cached_points,
            backend=self.backend,
            optimum_requests=self.optimum_requests,
        )

    def ratios_for(self, algorithm: str) -> Dict[str, float]:
        """Elapsed-time ratio of ``algorithm`` at every point that has one."""
        return {
            record.point: record.elapsed_ratio
            for record in self.for_algorithm(algorithm)
            if record.elapsed_ratio is not None
        }

    def max_ratio_for(self, algorithm: str) -> float:
        """Worst elapsed-time ratio of ``algorithm`` over the set."""
        ratios = self.ratios_for(algorithm)
        return max(ratios.values()) if ratios else float("nan")

    # -- emission ----------------------------------------------------------------------

    def as_rows(self, columns: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
        """Flat row dictionaries in record order, optionally column-selected."""
        rows = [record.as_row() for record in self.records]
        if columns is None:
            return rows
        return [{column: row[column] for column in columns} for row in rows]

    def to_json(self, columns: Optional[Sequence[str]] = None) -> str:
        """Deterministic JSON document (stable record order, sorted keys)."""
        return json.dumps(
            {
                "experiment": self.name,
                "num_points": len(self.records),
                "results": self.as_rows(columns),
            },
            sort_keys=True,
            indent=2,
        )

    def write_json(
        self, path: "str | Path", columns: Optional[Sequence[str]] = None
    ) -> None:
        """Write :meth:`to_json` to ``path``."""
        Path(path).write_text(self.to_json(columns) + "\n")

    def write_csv(
        self, path: "str | Path", columns: Optional[Sequence[str]] = None
    ) -> None:
        """Write the rows as CSV (canonical column order, grid order)."""
        rows = self.as_rows(columns)
        if not rows:
            Path(path).write_text("")
            return
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)

    # -- round-trip --------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """Lossless JSON-safe encoding (see :meth:`from_json_dict`)."""
        return {
            "name": self.name,
            "workers": self.workers,
            "cached_points": self.cached_points,
            "backend": self.backend,
            "optimum_requests": self.optimum_requests,
            "records": [record.to_json_dict() for record in self.records],
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "ResultSet":
        """Rebuild a result set from :meth:`to_json_dict` output."""
        return cls(
            name=str(payload["name"]),
            records=tuple(
                RunRecord.from_json_dict(item) for item in payload["records"]
            ),
            workers=int(payload.get("workers", 0)),
            cached_points=int(payload.get("cached_points", 0)),
            backend=str(payload.get("backend", "serial")),
            optimum_requests=int(payload.get("optimum_requests", 0)),
        )
