"""Measured approximation ratios of prefetching algorithms against the optimum.

The Section 2 experiments all reduce to the same measurement: run one or more
algorithms over an instance, compute the optimal elapsed (or stall) time, and
report the ratios next to the theoretical bounds.  This module provides that
measurement on top of the unified run-record model: each algorithm run yields
a full :class:`~repro.analysis.results.RunRecord` (instance identity,
metrics, optimum, ratios), and the :class:`RatioReport` wraps the records of
one instance together with the compact per-algorithm
:class:`AlgorithmMeasurement` rows and the theoretical bounds the reporting
layer tabulates.

Optimum computation is routed through the optimum service
(:mod:`repro.lp.service`) rather than bespoke LP calls: instances are
canonically normalized and fingerprinted, optima are cached, and every
record carries the solve wall time.  Passing ``store=`` (a
:class:`~repro.analysis.store.RunStore`) persists and reuses those optima
through the same SQLite file the batched runner fills, so a ``repro
compare`` on an instance a sweep already solved is a pure lookup.  For
grid-shaped ratio experiments prefer
``ExperimentSpec(compute_optimum=True)`` on the batched runner — it
deduplicates and fans out the solves; this module remains the per-instance
measurement (``repro compare``, ``run_sweep``) emitting the same model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..algorithms.base import PrefetchAlgorithm
from ..core.bounds import SingleDiskBounds
from ..disksim.executor import SimulationResult, simulate
from ..disksim.instance import ProblemInstance
from ..errors import ConfigurationError
from ..lp.service import OptimumService, SolverConfig
from .results import ResultSet, RunRecord

__all__ = ["AlgorithmMeasurement", "RatioReport", "measure_ratios", "measure_parallel_stall"]


@dataclass(frozen=True)
class AlgorithmMeasurement:
    """One algorithm's performance on one instance (the compact ratio row)."""

    algorithm: str
    stall_time: int
    elapsed_time: int
    num_fetches: int
    elapsed_ratio: float
    stall_ratio: float

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe encoding (see :meth:`from_dict`)."""
        return {
            "algorithm": self.algorithm,
            "stall_time": self.stall_time,
            "elapsed_time": self.elapsed_time,
            "num_fetches": self.num_fetches,
            "elapsed_ratio": self.elapsed_ratio,
            "stall_ratio": self.stall_ratio,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "AlgorithmMeasurement":
        """Rebuild a measurement from :meth:`as_dict` output."""
        return cls(
            algorithm=str(payload["algorithm"]),
            stall_time=int(payload["stall_time"]),
            elapsed_time=int(payload["elapsed_time"]),
            num_fetches=int(payload["num_fetches"]),
            elapsed_ratio=float(payload["elapsed_ratio"]),
            stall_ratio=float(payload["stall_ratio"]),
        )

    @classmethod
    def from_record(cls, record: RunRecord) -> "AlgorithmMeasurement":
        """The compact view of a ratio-carrying :class:`RunRecord`."""
        return cls(
            algorithm=record.algorithm,
            stall_time=record.metrics.stall_time,
            elapsed_time=record.metrics.elapsed_time,
            num_fetches=record.metrics.num_fetches,
            elapsed_ratio=record.elapsed_ratio if record.elapsed_ratio is not None else 1.0,
            stall_ratio=record.stall_ratio if record.stall_ratio is not None else 1.0,
        )


@dataclass(frozen=True)
class RatioReport:
    """Measured ratios of several algorithms on one instance, plus the bounds."""

    instance_description: str
    optimal_stall: int
    optimal_elapsed: int
    measurements: Tuple[AlgorithmMeasurement, ...]
    bounds: Optional[SingleDiskBounds] = None
    records: Tuple[RunRecord, ...] = ()

    def measurement(self, algorithm: str) -> AlgorithmMeasurement:
        """The measurement row for ``algorithm`` (exact name match)."""
        for m in self.measurements:
            if m.algorithm == algorithm:
                return m
        raise KeyError(f"no measurement for algorithm {algorithm!r}")

    def worst_elapsed_ratio(self) -> float:
        """Largest elapsed-time ratio across all measured algorithms."""
        return max(m.elapsed_ratio for m in self.measurements)

    def to_result_set(self, name: str = "ratios") -> ResultSet:
        """The full run records of this report as a :class:`ResultSet`."""
        return ResultSet(name=name, records=self.records)

    def as_rows(self) -> List[Dict[str, object]]:
        """Row dictionaries for the reporting table helpers."""
        rows = []
        for m in self.measurements:
            row = {
                "algorithm": m.algorithm,
                "stall": m.stall_time,
                "elapsed": m.elapsed_time,
                "fetches": m.num_fetches,
                "elapsed_ratio": round(m.elapsed_ratio, 4),
                "stall_ratio": round(m.stall_ratio, 4),
            }
            rows.append(row)
        return rows

    def to_json_dict(self) -> Dict[str, object]:
        """Lossless JSON-safe encoding (see :meth:`from_json_dict`).

        The bounds are stored as their defining ``(k, F)`` pair — every
        derived value of :class:`SingleDiskBounds` is a closed form over it.
        """
        return {
            "instance_description": self.instance_description,
            "optimal_stall": self.optimal_stall,
            "optimal_elapsed": self.optimal_elapsed,
            "measurements": [m.as_dict() for m in self.measurements],
            "bounds": None if self.bounds is None else {
                "cache_size": self.bounds.cache_size,
                "fetch_time": self.bounds.fetch_time,
            },
            "records": [record.to_json_dict() for record in self.records],
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "RatioReport":
        """Rebuild a report from :meth:`to_json_dict` output."""
        bounds = payload.get("bounds")
        return cls(
            instance_description=str(payload["instance_description"]),
            optimal_stall=int(payload["optimal_stall"]),
            optimal_elapsed=int(payload["optimal_elapsed"]),
            measurements=tuple(
                AlgorithmMeasurement.from_dict(m) for m in payload["measurements"]
            ),
            bounds=None if bounds is None else SingleDiskBounds(
                cache_size=int(bounds["cache_size"]),
                fetch_time=int(bounds["fetch_time"]),
            ),
            records=tuple(
                RunRecord.from_json_dict(r) for r in payload.get("records", ())
            ),
        )


def _run_records(
    instance: ProblemInstance,
    algorithms: Sequence[PrefetchAlgorithm],
    *,
    optimal_elapsed: int,
    optimal_stall: int,
    point: Optional[str] = None,
    solve_seconds: Optional[float] = None,
) -> Tuple[RunRecord, ...]:
    """Simulate every algorithm and record it against the given optimum."""
    label = point if point is not None else instance.describe()
    records = []
    for algorithm in algorithms:
        result: SimulationResult = simulate(instance, algorithm)
        records.append(
            RunRecord.from_simulation(
                result,
                point=label,
                algorithm_spec=algorithm.spec or result.policy_name,
                optimal_stall=optimal_stall,
                optimal_elapsed=optimal_elapsed,
                optimum_solve_seconds=solve_seconds,
            )
        )
    return tuple(records)


def measure_ratios(
    instance: ProblemInstance,
    algorithms: Sequence[PrefetchAlgorithm],
    *,
    optimal_elapsed: Optional[int] = None,
    optimal_stall: Optional[int] = None,
    point: Optional[str] = None,
    service: Optional[OptimumService] = None,
    store=None,
) -> RatioReport:
    """Run ``algorithms`` on a single-disk ``instance`` and compare to the optimum.

    The optimum is computed through the optimum service
    (:class:`~repro.lp.service.OptimumService` — canonical fingerprint,
    cached, normalized instance) unless both reference values are supplied
    (the adversarial experiments pass the analytically known optimum to
    avoid re-solving the LP on large constructions).  Passing a shared
    ``service`` lets callers reuse cached optima across measurements;
    passing ``store`` (a :class:`~repro.analysis.store.RunStore`) backs the
    default service with the durable store the batched runner shares.
    """
    if instance.num_disks != 1:
        raise ConfigurationError("measure_ratios handles single-disk instances; use "
                                 "measure_parallel_stall for D > 1")
    solve_seconds: Optional[float] = None
    if optimal_elapsed is None or optimal_stall is None:
        service = service or OptimumService(store=store)
        record = service.optimum(instance)
        optimal_elapsed = record.elapsed_time
        optimal_stall = record.stall_time
        solve_seconds = record.solve_seconds

    records = _run_records(
        instance, algorithms,
        optimal_elapsed=optimal_elapsed, optimal_stall=optimal_stall, point=point,
        solve_seconds=solve_seconds,
    )
    return RatioReport(
        instance_description=instance.describe(),
        optimal_stall=optimal_stall,
        optimal_elapsed=optimal_elapsed,
        measurements=tuple(AlgorithmMeasurement.from_record(r) for r in records),
        bounds=SingleDiskBounds(instance.cache_size, instance.fetch_time),
        records=records,
    )


def measure_parallel_stall(
    instance: ProblemInstance,
    algorithms: Sequence[PrefetchAlgorithm],
    *,
    method: str = "auto",
    point: Optional[str] = None,
    service: Optional[OptimumService] = None,
    store=None,
) -> RatioReport:
    """Run ``algorithms`` on a parallel-disk instance and compare stall times
    against the Theorem 4 schedule (which is itself at most the optimum).

    The Theorem 4 solve is routed through the optimum service as well, so a
    shared ``service`` — or a ``store`` (the batched runner's SQLite
    :class:`~repro.analysis.store.RunStore`) — deduplicates it with the
    batched runner's optima.
    """
    if service is None:
        service = OptimumService(config=SolverConfig(method=method), store=store)
    elif service.config.method != method:
        raise ConfigurationError(
            f"measure_parallel_stall called with method={method!r} but the "
            f"shared service is configured with {service.config.method!r}"
        )
    record = service.optimum(instance)
    records = _run_records(
        instance, algorithms,
        optimal_elapsed=record.elapsed_time,
        optimal_stall=max(record.stall_time, 0),
        point=point,
        solve_seconds=record.solve_seconds,
    )
    return RatioReport(
        instance_description=instance.describe(),
        optimal_stall=record.stall_time,
        optimal_elapsed=record.elapsed_time,
        measurements=tuple(AlgorithmMeasurement.from_record(r) for r in records),
        bounds=None,
        records=records,
    )
