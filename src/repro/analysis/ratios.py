"""Measured approximation ratios of prefetching algorithms against the optimum.

The Section 2 experiments all reduce to the same measurement: run one or more
algorithms over an instance, compute the optimal elapsed (or stall) time with
the LP machinery, and report the ratios next to the theoretical bounds.  This
module provides that measurement as reusable functions returning plain
dataclasses the reporting layer can tabulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..algorithms.base import PrefetchAlgorithm
from ..core.bounds import SingleDiskBounds
from ..disksim.executor import SimulationResult, simulate
from ..disksim.instance import ProblemInstance
from ..errors import ConfigurationError
from ..lp.parallel import optimal_parallel_schedule
from ..lp.single_disk import optimal_single_disk

__all__ = ["AlgorithmMeasurement", "RatioReport", "measure_ratios", "measure_parallel_stall"]


@dataclass(frozen=True)
class AlgorithmMeasurement:
    """One algorithm's performance on one instance."""

    algorithm: str
    stall_time: int
    elapsed_time: int
    num_fetches: int
    elapsed_ratio: float
    stall_ratio: float


@dataclass(frozen=True)
class RatioReport:
    """Measured ratios of several algorithms on one instance, plus the bounds."""

    instance_description: str
    optimal_stall: int
    optimal_elapsed: int
    measurements: tuple
    bounds: Optional[SingleDiskBounds] = None

    def measurement(self, algorithm: str) -> AlgorithmMeasurement:
        """The measurement row for ``algorithm`` (exact name match)."""
        for m in self.measurements:
            if m.algorithm == algorithm:
                return m
        raise KeyError(f"no measurement for algorithm {algorithm!r}")

    def worst_elapsed_ratio(self) -> float:
        """Largest elapsed-time ratio across all measured algorithms."""
        return max(m.elapsed_ratio for m in self.measurements)

    def as_rows(self) -> List[Dict[str, object]]:
        """Row dictionaries for the reporting table helpers."""
        rows = []
        for m in self.measurements:
            row = {
                "algorithm": m.algorithm,
                "stall": m.stall_time,
                "elapsed": m.elapsed_time,
                "fetches": m.num_fetches,
                "elapsed_ratio": round(m.elapsed_ratio, 4),
                "stall_ratio": round(m.stall_ratio, 4),
            }
            rows.append(row)
        return rows


def _ratio(value: int, reference: int) -> float:
    if reference == 0:
        return 1.0 if value == 0 else float("inf")
    return value / reference


def measure_ratios(
    instance: ProblemInstance,
    algorithms: Sequence[PrefetchAlgorithm],
    *,
    optimal_elapsed: Optional[int] = None,
    optimal_stall: Optional[int] = None,
) -> RatioReport:
    """Run ``algorithms`` on a single-disk ``instance`` and compare to the optimum.

    The optimum is computed with the LP machinery unless both reference values
    are supplied (the adversarial experiments pass the analytically known
    optimum to avoid re-solving the LP on large constructions).
    """
    if instance.num_disks != 1:
        raise ConfigurationError("measure_ratios handles single-disk instances; use "
                                 "measure_parallel_stall for D > 1")
    if optimal_elapsed is None or optimal_stall is None:
        optimum = optimal_single_disk(instance)
        optimal_elapsed = optimum.elapsed_time
        optimal_stall = optimum.stall_time

    measurements = []
    for algorithm in algorithms:
        result: SimulationResult = simulate(instance, algorithm)
        measurements.append(
            AlgorithmMeasurement(
                algorithm=result.policy_name,
                stall_time=result.stall_time,
                elapsed_time=result.elapsed_time,
                num_fetches=result.metrics.num_fetches,
                elapsed_ratio=_ratio(result.elapsed_time, optimal_elapsed),
                stall_ratio=_ratio(result.stall_time, optimal_stall),
            )
        )
    return RatioReport(
        instance_description=instance.describe(),
        optimal_stall=optimal_stall,
        optimal_elapsed=optimal_elapsed,
        measurements=tuple(measurements),
        bounds=SingleDiskBounds(instance.cache_size, instance.fetch_time),
    )


def measure_parallel_stall(
    instance: ProblemInstance,
    algorithms: Sequence[PrefetchAlgorithm],
    *,
    method: str = "auto",
) -> RatioReport:
    """Run ``algorithms`` on a parallel-disk instance and compare stall times
    against the Theorem 4 schedule (which is itself at most the optimum)."""
    optimum = optimal_parallel_schedule(instance, method=method)
    measurements = []
    for algorithm in algorithms:
        result = simulate(instance, algorithm)
        measurements.append(
            AlgorithmMeasurement(
                algorithm=result.policy_name,
                stall_time=result.stall_time,
                elapsed_time=result.elapsed_time,
                num_fetches=result.metrics.num_fetches,
                elapsed_ratio=_ratio(result.elapsed_time, optimum.elapsed_time),
                stall_ratio=_ratio(result.stall_time, max(optimum.stall_time, 0)),
            )
        )
    return RatioReport(
        instance_description=instance.describe(),
        optimal_stall=optimum.stall_time,
        optimal_elapsed=optimum.elapsed_time,
        measurements=tuple(measurements),
        bounds=None,
    )
