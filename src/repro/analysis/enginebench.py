"""Engine throughput benchmark: loop vs scan vs vector-batch requests/second.

One measurement core shared by ``benchmarks/bench_engine_speed.py`` (which
writes ``BENCH_engine.json`` at the repository root) and the ``repro bench
engine`` CLI subcommand, so the published numbers are reproducible without
digging in ``benchmarks/``.  Three single-disk workload regimes are timed
for each algorithm:

* ``zipf-hot`` — a hot zipf working set the size of the cache neighbourhood;
  the regime the vector engine's batch mode targets (many seeds of the same
  shape stacked into one kernel pass).
* ``zipf-small-ws`` / ``loop`` — the small-working-set regimes where the
  scan engine's per-decision re-scan turns quadratic; the historical
  ``loop``-vs-``scan`` ≥ 5x expectation lives here.

Per cell the benchmark reports the loop (indexed event loop) and scan
throughput of :func:`~repro.disksim.executor.simulate`, plus the batched
vector throughput of :func:`~repro.disksim.vector.simulate_batch` over
``batch_size`` same-shape instances, and the derived speedups.  The
``vector_batch_speedup`` column (vector batch vs the indexed loop) is the
number the CI perf gate enforces: :func:`gate_failures` checks every cell
against a stored floor file (``BENCH_engine_floor.json``, beside
``BENCH_engine.json``) and the ≥ :data:`GATE_MIN_SPEEDUP` x-loop bar, so
hot-path regressions fail loudly instead of silently.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..algorithms.registry import make_algorithm
from ..disksim.executor import simulate
from ..disksim.instance import ProblemInstance
from ..disksim.vector import require_numpy, simulate_batch
from ..workloads import looping_scan, zipf

__all__ = [
    "ALGORITHMS",
    "BATCH_SIZE",
    "GATE_MIN_SPEEDUP",
    "N_REQUESTS",
    "WORKLOADS",
    "build_instances",
    "default_floor",
    "format_engine_report",
    "gate_failures",
    "run_engine_benchmark",
]

#: Default request-sequence length of every benchmark cell.
N_REQUESTS = 5000

#: Default number of same-shape instances stacked into one vector pass.
BATCH_SIZE = 256

#: The perf gate's lower bar on ``vector_batch_speedup`` in every cell.
GATE_MIN_SPEEDUP = 5.0

#: Workload regimes timed per algorithm (see the module docstring).
WORKLOADS = ("zipf-hot", "zipf-small-ws", "loop")

#: Algorithm specs timed per workload (both vector-kernel plan families).
ALGORITHMS = ("aggressive", "delay:d=3")

#: Every cell runs with this cache size / fetch time (the BENCH_engine
#: configuration the seed benchmark established).
_CACHE_SIZE = 64
_FETCH_TIME = 10


def build_instances(label: str, num_requests: int, count: int) -> List[ProblemInstance]:
    """``count`` same-shape instances of the ``label`` workload regime.

    Seeded regimes (the zipf families) vary the seed per instance — the
    realistic batch-mode shape, "the same grid point at many seeds" — while
    the deterministic ``loop`` regime repeats one instance; the kernel does
    identical per-row work either way.
    """
    if label == "zipf-hot":
        make = lambda i: zipf(num_requests, 120, skew=1.0, seed=7 + i)  # noqa: E731
    elif label == "zipf-small-ws":
        make = lambda i: zipf(num_requests, 70, skew=1.1, seed=3 + i)  # noqa: E731
    elif label == "loop":
        loops = num_requests // 60 + 1
        make = lambda i: looping_scan(60, loops)[:num_requests]  # noqa: E731
    else:
        raise ValueError(f"unknown benchmark workload {label!r}")
    return [
        ProblemInstance.single_disk(
            make(i), cache_size=_CACHE_SIZE, fetch_time=_FETCH_TIME
        )
        for i in range(count)
    ]


def _time_single(instance: ProblemInstance, algorithm_spec: str, engine: str, reps: int) -> float:
    """Best-of-``reps`` wall time of one ``simulate()`` call."""
    best = float("inf")
    for _ in range(reps):
        algorithm = make_algorithm(algorithm_spec)
        start = time.perf_counter()
        simulate(instance, algorithm, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def _time_batch(instances: List[ProblemInstance], algorithm_spec: str, reps: int) -> float:
    """Best-of-``reps`` wall time of one ``simulate_batch()`` pass."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        simulate_batch(instances, algorithm_spec)
        best = min(best, time.perf_counter() - start)
    return best


def run_engine_benchmark(
    *,
    num_requests: int = N_REQUESTS,
    batch_size: int = BATCH_SIZE,
    include_scan: bool = True,
    reps: int = 3,
) -> Dict[str, object]:
    """Measure every workload x algorithm cell and return the report dict.

    ``include_scan=False`` skips the (slow, quadratic) scan reference rows —
    the configuration the CI perf gate runs, which only needs the
    loop-vs-vector comparison.  The report is JSON-ready (rounded floats,
    sorted-key stable) and carries the grid configuration alongside the
    cells so a stored report is self-describing.
    """
    require_numpy()
    results: Dict[str, Dict[str, object]] = {}
    worst_small_ws = float("inf")
    worst_vector = float("inf")
    for label in WORKLOADS:
        instances = build_instances(label, num_requests, batch_size)
        single = instances[0]
        for algorithm in ALGORITHMS:
            loop_seconds = _time_single(single, algorithm, "loop", reps=reps)
            batch_seconds = _time_batch(instances, algorithm, reps=min(reps, 2))
            loop_rps = num_requests / loop_seconds
            vector_rps = batch_size * num_requests / batch_seconds
            vector_speedup = vector_rps / loop_rps
            cell: Dict[str, object] = {
                "num_requests": num_requests,
                "cache_size": _CACHE_SIZE,
                "fetch_time": _FETCH_TIME,
                "loop_seconds": round(loop_seconds, 6),
                "loop_requests_per_second": round(loop_rps, 1),
                "vector_batch_size": batch_size,
                "vector_batch_seconds": round(batch_seconds, 6),
                "vector_batch_requests_per_second": round(vector_rps, 1),
                "vector_batch_speedup": round(vector_speedup, 2),
            }
            worst_vector = min(worst_vector, vector_speedup)
            if include_scan:
                scan_seconds = _time_single(single, algorithm, "scan", reps=1)
                loop_vs_scan = scan_seconds / loop_seconds
                cell["scan_seconds"] = round(scan_seconds, 6)
                cell["scan_requests_per_second"] = round(num_requests / scan_seconds, 1)
                cell["speedup"] = round(loop_vs_scan, 2)
                # Only the small-working-set regimes carry the >= 5x
                # loop-vs-scan expectation (see the module docstring).
                if label != "zipf-hot":
                    worst_small_ws = min(worst_small_ws, loop_vs_scan)
            results[f"{label}/{algorithm}"] = cell
    report: Dict[str, object] = {
        "benchmark": "engine-throughput",
        "num_requests": num_requests,
        "batch_size": batch_size,
        "worst_vector_batch_speedup": round(worst_vector, 2),
        "results": results,
    }
    if include_scan:
        report["worst_small_ws_speedup"] = round(worst_small_ws, 2)
    return report


def format_engine_report(report: Dict[str, object]) -> str:
    """Human-readable cell table of a :func:`run_engine_benchmark` report."""
    lines = []
    for label, cell in report["results"].items():
        parts = [f"{label:28s} loop {cell['loop_requests_per_second']:>12,.0f} req/s"]
        if "scan_requests_per_second" in cell:
            parts.append(f"scan {cell['scan_requests_per_second']:>10,.0f} req/s")
        parts.append(
            f"vector[B={cell['vector_batch_size']}] "
            f"{cell['vector_batch_requests_per_second']:>12,.0f} req/s"
            f" ({cell['vector_batch_speedup']:>5.1f}x loop)"
        )
        lines.append("   ".join(parts))
    lines.append(
        f"worst vector-batch speedup over loop: {report['worst_vector_batch_speedup']}x"
    )
    if "worst_small_ws_speedup" in report:
        lines.append(
            f"worst small-working-set loop-vs-scan speedup: {report['worst_small_ws_speedup']}x"
        )
    return "\n".join(lines)


def default_floor() -> Dict[str, object]:
    """The built-in gate floor used when no floor file is given.

    Deliberately loose on absolute throughput (CI machines vary widely);
    the relative ≥ :data:`GATE_MIN_SPEEDUP` x-loop bar is the real teeth.
    """
    return {
        "gate": "engine-vector-perf",
        "min_vector_batch_requests_per_second": 200000.0,
        "min_vector_batch_speedup": GATE_MIN_SPEEDUP,
    }


def gate_failures(
    report: Dict[str, object], floor: Optional[Dict[str, object]] = None
) -> List[str]:
    """The perf-gate violations of ``report`` against ``floor`` (empty = pass).

    Every cell must reach the floor's absolute vector-batch throughput and
    its vector-batch speedup over the loop engine; the floor file may also
    pin ``num_requests`` / ``batch_size`` so the gate always measures the
    grid its numbers were calibrated on (checked here, not re-run).
    """
    floor = floor or default_floor()
    failures = []
    for axis in ("num_requests", "batch_size"):
        want = floor.get(axis)
        if want is not None and report.get(axis) != want:
            failures.append(
                f"gate grid mismatch: {axis}={report.get(axis)} but the floor "
                f"was calibrated at {axis}={want}"
            )
    min_rps = float(floor.get("min_vector_batch_requests_per_second", 0.0))
    min_speedup = float(floor.get("min_vector_batch_speedup", GATE_MIN_SPEEDUP))
    for label, cell in report["results"].items():
        rps = float(cell["vector_batch_requests_per_second"])
        speedup = float(cell["vector_batch_speedup"])
        if rps < min_rps:
            failures.append(
                f"{label}: vector batch {rps:,.0f} req/s is below the floor "
                f"of {min_rps:,.0f} req/s"
            )
        if speedup < min_speedup:
            failures.append(
                f"{label}: vector batch speedup {speedup:.2f}x loop is below "
                f"the {min_speedup:.1f}x gate"
            )
    return failures


def load_floor(path) -> Dict[str, object]:
    """Read a gate floor file (see :func:`gate_failures` for its schema)."""
    return json.loads(Path(path).read_text())
