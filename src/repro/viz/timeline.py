"""Human-readable event timelines and cache-occupancy traces.

Complements the Gantt chart with a line-per-event narrative (useful when
debugging a policy's decisions) and a per-time-step cache occupancy count
(used by the Section 3 experiments to show peak extra-memory usage).
"""

from __future__ import annotations

from typing import List, Tuple

from ..disksim.events import EventKind
from ..disksim.executor import SimulationResult

__all__ = ["render_timeline", "cache_occupancy_trace"]


def render_timeline(result: SimulationResult, *, limit: int | None = None) -> str:
    """One line per event: time, kind, block/disk/request involved."""
    lines: List[str] = [
        f"run of {result.policy_name!r} on {result.instance.describe()}",
        f"stall={result.stall_time} elapsed={result.elapsed_time} "
        f"fetches={result.metrics.num_fetches}",
    ]
    events = list(result.events)
    if limit is not None:
        events = events[:limit]
    for event in events:
        if event.kind == EventKind.SERVE:
            lines.append(f"  t={event.time:<4d} serve   r{event.request_index} = {event.block}")
        elif event.kind == EventKind.STALL:
            lines.append(
                f"  t={event.time:<4d} stall   {event.duration} unit(s) waiting for {event.block}"
            )
        elif event.kind == EventKind.FETCH_START:
            lines.append(f"  t={event.time:<4d} fetch   {event.block} on disk {event.disk}")
        elif event.kind == EventKind.FETCH_COMPLETE:
            lines.append(f"  t={event.time:<4d} arrive  {event.block} from disk {event.disk}")
        elif event.kind == EventKind.EVICT:
            lines.append(f"  t={event.time:<4d} evict   {event.block} (for disk {event.disk})")
    if limit is not None and len(result.events) > limit:
        lines.append(f"  ... ({len(result.events) - limit} more events)")
    return "\n".join(lines)


def cache_occupancy_trace(result: SimulationResult) -> List[Tuple[int, int]]:
    """``(time, occupied slots)`` after every fetch start/completion event.

    Occupancy counts resident plus in-flight blocks, i.e. reserved cache
    slots; the maximum over the trace equals
    ``result.metrics.peak_cache_used``.
    """
    occupancy = len(result.instance.initial_cache)
    trace: List[Tuple[int, int]] = [(0, occupancy)]
    for event in result.events:
        if event.kind == EventKind.EVICT:
            occupancy -= 1
            trace.append((event.time, occupancy))
        elif event.kind == EventKind.FETCH_START:
            occupancy += 1
            trace.append((event.time, occupancy))
    return trace
