"""Text-based visualisation of schedules (ASCII Gantt charts and timelines)."""

from .gantt import render_gantt
from .timeline import cache_occupancy_trace, render_timeline

__all__ = ["render_gantt", "cache_occupancy_trace", "render_timeline"]
