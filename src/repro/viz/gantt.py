"""Text Gantt charts of prefetching/caching runs.

Rendering uses plain ASCII so it works in any terminal and in test output;
there is no plotting dependency.  The chart has one row for the processor
(serving/stalling) and one row per disk (fetch operations), with one column
per time unit.

Example (the paper's single-disk example under Aggressive)::

    t        0         1
             0123456789012
    cpu      ssssss...ssss
    disk0    .ffffffff....

``s`` = serving a request, ``.`` = idle, ``f`` = fetching, ``x`` = stall.
"""

from __future__ import annotations

from typing import Dict, List

from ..disksim.events import EventKind
from ..disksim.executor import SimulationResult

__all__ = ["render_gantt"]


def render_gantt(result: SimulationResult, *, max_width: int = 200) -> str:
    """Render a simulated run as an ASCII Gantt chart.

    Runs longer than ``max_width`` time units are truncated on the right (a
    marker shows how many units were cut).
    """
    horizon = result.elapsed_time
    truncated = 0
    if horizon > max_width:
        truncated = horizon - max_width
        horizon = max_width

    cpu_row = ["."] * horizon
    disk_rows: Dict[int, List[str]] = {
        d: ["."] * horizon for d in range(result.instance.num_disks)
    }

    for event in result.events:
        if event.kind == EventKind.SERVE:
            if event.time < horizon:
                cpu_row[event.time] = "s"
        elif event.kind == EventKind.STALL:
            for t in range(event.time, min(event.time + event.duration, horizon)):
                cpu_row[t] = "x"
        elif event.kind == EventKind.FETCH_START and event.disk is not None:
            for t in range(event.time, min(event.time + result.instance.fetch_time, horizon)):
                disk_rows[event.disk][t] = "f"

    # Time ruler: tens line and units line.
    tens = "".join(str((t // 10) % 10) if t % 10 == 0 else " " for t in range(horizon))
    units = "".join(str(t % 10) for t in range(horizon))

    label_width = max(len(f"disk{d}") for d in disk_rows) if disk_rows else 5
    label_width = max(label_width, len("cpu"), len("t"))
    lines = [
        f"{'t'.ljust(label_width)}  {tens}",
        f"{''.ljust(label_width)}  {units}",
        f"{'cpu'.ljust(label_width)}  {''.join(cpu_row)}",
    ]
    for disk in sorted(disk_rows):
        lines.append(f"{f'disk{disk}'.ljust(label_width)}  {''.join(disk_rows[disk])}")
    if truncated:
        lines.append(f"... ({truncated} further time units not shown)")
    legend = "legend: s=serve  x=stall  f=fetch  .=idle"
    lines.append(legend)
    return "\n".join(lines)
