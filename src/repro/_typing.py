"""Shared type aliases used across the :mod:`repro` package."""

from __future__ import annotations

from typing import Hashable, Sequence, Union

__all__ = ["BlockId", "DiskId", "BlockSeq", "INFINITY"]

#: Identifier of a memory block.  Blocks are plain hashable values (strings
#: such as ``"b1"`` or integers); the library never inspects their structure.
BlockId = Hashable

#: Identifier of a disk.  Disks are numbered ``0 .. D-1``.
DiskId = int

#: A request sequence expressed as raw block identifiers.
BlockSeq = Sequence[BlockId]

#: Sentinel used for "never referenced again".  Using a large integer rather
#: than ``math.inf`` keeps every quantity in the library integral, which is
#: what the paper's time model assumes.
INFINITY: int = 10**18
