"""E4 — Corollaries 1–2: the Combination algorithm.

Shows that Combination (run Delay(d0) or Aggressive, whichever has the better
proven bound) achieves measured ratios no worse than the Corollary 2 bound
min{1 + F/(k + ceil(k/F) - 1), ratio(Delay(d0))} and never loses to the worse
of the two classical algorithms.
"""

from __future__ import annotations

from repro.algorithms import Combination
from repro.analysis import evaluate_instances, format_table
from repro.core.bounds import combination_bound
from repro.disksim import ProblemInstance
from repro.lp import optimal_single_disk
from repro.workloads import zipf

from conftest import emit

GRID = [(6, 4), (8, 8), (16, 4), (16, 12), (24, 6)]


def _instance(k: int, fetch_time: int) -> ProblemInstance:
    sequence = zipf(60, 2 * k, seed=k + fetch_time, prefix=f"e4_{k}_{fetch_time}_")
    return ProblemInstance.single_disk(sequence, cache_size=k, fetch_time=fetch_time)


def test_e4_combination(benchmark):
    instances = {key: _instance(*key) for key in GRID}

    labeled = [(f"k={k} F={f}", inst) for (k, f), inst in instances.items()]
    algorithms = ["combination", "aggressive", "conservative"]

    def run():
        elapsed = evaluate_instances(labeled, algorithms).metric("elapsed_time")
        return {
            (k, f): {alg: elapsed[f"k={k} F={f} alg={alg}"] for alg in algorithms}
            for (k, f) in instances
        }

    measured = benchmark(run)

    rows = []
    for (k, fetch_time), values in measured.items():
        optimum = optimal_single_disk(instances[(k, fetch_time)]).elapsed_time
        chosen = Combination.select_for(instances[(k, fetch_time)]).name
        ratio = values["combination"] / optimum
        rows.append(
            {
                "k": k,
                "F": fetch_time,
                "delegate": chosen,
                "combination_ratio": round(ratio, 4),
                "aggressive_ratio": round(values["aggressive"] / optimum, 4),
                "conservative_ratio": round(values["conservative"] / optimum, 4),
                "corollary2_bound": round(combination_bound(k, fetch_time), 4),
            }
        )
        assert ratio <= combination_bound(k, fetch_time) + 1e-9
        assert values["combination"] <= max(values["aggressive"], values["conservative"])
    emit("E4: Combination vs Aggressive and Conservative", format_table(rows))
