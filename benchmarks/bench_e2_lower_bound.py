"""E2 — Theorem 2: the adversarial family forces Aggressive close to the bound.

Builds the phase construction for several (k, F) pairs and runs it through
the batched runner's optimum pipeline (``evaluate_instances`` with
``compute_optimum=True``): each instance's exact LP optimum is solved once
by the optimum service and every record carries the measured ratio and the
solve wall time.  The measured ratios are compared with the per-phase
accounting (k + l + F vs k + l + 2) and the asymptotic Theorem 2 value.
Expected shape: the measured ratio grows with the number of phases towards
the predicted per-phase ratio, which approaches the Theorem 2 bound.
"""

from __future__ import annotations

from repro.analysis import evaluate_instances, format_table
from repro.workloads import theorem2_sequence

from conftest import emit

GRID = [(7, 4, 6), (13, 4, 5), (13, 5, 5), (11, 6, 4), (9, 3, 6)]


def test_e2_lower_bound_construction(benchmark):
    constructions = {
        (k, fetch_time): theorem2_sequence(k, fetch_time, phases)
        for k, fetch_time, phases in GRID
    }

    labeled = [(f"k={k} F={f}", c.instance) for (k, f), c in constructions.items()]

    def run():
        return evaluate_instances(labeled, ["aggressive"], compute_optimum=True)

    results = benchmark(run)

    rows = []
    for (k, fetch_time), construction in constructions.items():
        record = next(
            r for r in results if r.point == f"k={k} F={fetch_time} alg=aggressive"
        )
        ratio = record.elapsed_ratio
        rows.append(
            {
                "k": k,
                "F": fetch_time,
                "phases": construction.num_phases,
                "aggressive": record.metrics.elapsed_time,
                "optimal": record.optimal_elapsed,
                "measured_ratio": round(ratio, 4),
                "per_phase_prediction": round(construction.predicted_ratio, 4),
                "thm2_asymptotic": round(construction.asymptotic_ratio, 4),
                "lp_seconds": round(record.optimum_solve_seconds, 3),
            }
        )
        # The measured ratio must exceed 1 (the construction hurts Aggressive)
        # and stay below the per-phase prediction (finite-length effects).
        assert 1.0 < ratio <= construction.predicted_ratio + 1e-9
    emit("E2: Theorem 2 adversarial construction", format_table(rows))
