"""E2 — Theorem 2: the adversarial family forces Aggressive close to the bound.

Builds the phase construction for several (k, F) pairs, measures Aggressive's
elapsed time and ratio against the optimum, and compares with the per-phase
accounting (k + l + F vs k + l + 2) and the asymptotic Theorem 2 value.
Expected shape: the measured ratio grows with the number of phases towards
the predicted per-phase ratio, which approaches the Theorem 2 bound.
"""

from __future__ import annotations

from repro.analysis import evaluate_instances, format_table
from repro.lp import optimal_single_disk
from repro.workloads import theorem2_sequence

from conftest import emit

GRID = [(7, 4, 6), (13, 4, 5), (13, 5, 5), (11, 6, 4), (9, 3, 6)]


def test_e2_lower_bound_construction(benchmark):
    constructions = {
        (k, fetch_time): theorem2_sequence(k, fetch_time, phases)
        for k, fetch_time, phases in GRID
    }

    labeled = [(f"k={k} F={f}", c.instance) for (k, f), c in constructions.items()]

    def run():
        elapsed = evaluate_instances(labeled, ["aggressive"]).metric("elapsed_time")
        return {key: elapsed[f"k={key[0]} F={key[1]} alg=aggressive"] for key in constructions}

    measured = benchmark(run)

    rows = []
    for (k, fetch_time), construction in constructions.items():
        optimum = optimal_single_disk(construction.instance).elapsed_time
        ratio = measured[(k, fetch_time)] / optimum
        rows.append(
            {
                "k": k,
                "F": fetch_time,
                "phases": construction.num_phases,
                "aggressive": measured[(k, fetch_time)],
                "optimal": optimum,
                "measured_ratio": round(ratio, 4),
                "per_phase_prediction": round(construction.predicted_ratio, 4),
                "thm2_asymptotic": round(construction.asymptotic_ratio, 4),
            }
        )
        # The measured ratio must exceed 1 (the construction hurts Aggressive)
        # and stay below the per-phase prediction (finite-length effects).
        assert 1.0 < ratio <= construction.predicted_ratio + 1e-9
    emit("E2: Theorem 2 adversarial construction", format_table(rows))
