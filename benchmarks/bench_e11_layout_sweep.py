"""E11 — layout x workload x disks: placement decides how much parallelism exists.

Sweeps the spec-addressable block placements (striped, round-robin, hashed,
contiguous-partitioned) against scan- and stream-shaped workloads over a
disk-count axis, entirely through workload/layout spec strings and the
``ExperimentSpec`` layouts axis — no custom instance-building Python.
Expected shape: for a cold sequential scan, first-seen round-robin placement
puts consecutive blocks on different disks and hides most fetch latency,
while contiguous partitioning keeps each run of blocks on one disk so its
fetches serialise; the stall gap widens with D.
"""

from __future__ import annotations

from repro.analysis import ExperimentSpec, format_table, run_experiments

from conftest import emit

SPEC = ExperimentSpec(
    name="e11-layout-sweep",
    workloads=("scan:blocks=60", "stream:streams=4,blocks=20"),
    cache_sizes=(8,),
    fetch_times=(4,),
    disks=(1, 2, 4),
    layouts=("roundrobin", "striped", "hashed", "partitioned"),
    algorithms=("parallel-aggressive",),
)


def test_e11_layout_sweep(benchmark):
    run = benchmark(lambda: run_experiments(SPEC))

    rows = [
        {
            "workload": row["workload"],
            "D": row["disks"],
            "layout": row["layout"] or "-",
            "stall": row["stall_time"],
            "elapsed": row["elapsed_time"],
        }
        for row in run.as_rows()
    ]
    emit("E11: block placement vs prefetch parallelism", format_table(rows))

    stall = {
        (row["workload"], row["disks"], row["layout"]): row["stall_time"]
        for row in run.as_rows()
    }
    for disks in (2, 4):
        # Round-robin placement interleaves a scan's consecutive blocks across
        # disks; contiguous partitioning serialises them on one disk.
        assert (
            stall[("scan:blocks=60", disks, "roundrobin")]
            < stall[("scan:blocks=60", disks, "partitioned")]
        )
        # More disks never hurt the round-robin scan.
        assert (
            stall[("scan:blocks=60", disks, "roundrobin")]
            <= stall[("scan:blocks=60", 1, None)]
        )
