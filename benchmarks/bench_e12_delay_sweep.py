"""E12 — the Delay(d) spectrum swept through the typed registry at scale.

Drives ``delay:d=0..n`` through the batched experiment runner purely via
spec strings (workload x seed x d grid) and confirms the family's endpoint
identities on every grid point:

* ``Delay(0)`` is exactly the Aggressive strategy, and
* ``Delay(n)`` (any d >= the sequence length) is exactly Conservative,

so the registry's parametrised ``delay:d=<int>`` form reproduces both
classical algorithms without a dedicated code path.  Complements E3 (which
studies the Theorem 3 bound on small LP-checkable instances) with a
simulation-only sweep two orders of magnitude larger, and doubles as a
determinism check: the serial, thread-pool and process-pool backends must
emit byte-identical JSON from the unified ResultSet.
"""

from __future__ import annotations

from repro.analysis import ExperimentSpec, format_comparison, run_experiments

from conftest import emit

CACHE = 12
FETCH_TIME = 6
DELAYS = [0, 1, 3, 6, 9, 12, 24]
#: Far beyond every sequence length below — the Conservative endpoint.
BIG_DELAY = 10**6

WORKLOADS = (
    "zipf:n=600,blocks=80,skew=0.9",
    "loop:blocks=50,loops=12",
    "wss:phases=6,blocks=30,n=120,overlap=6",
)


def _spec() -> ExperimentSpec:
    algorithms = (
        ["aggressive", "conservative"]
        + [f"delay:d={d}" for d in DELAYS]
        + [f"delay:d={BIG_DELAY}"]
    )
    return ExperimentSpec(
        name="e12-delay-endpoints",
        workloads=WORKLOADS,
        cache_sizes=(CACHE,),
        fetch_times=(FETCH_TIME,),
        algorithms=tuple(algorithms),
        seeds=(0, 1),
    )


def test_e12_delay_sweep_endpoints(benchmark):
    spec = _spec()

    def run():
        return run_experiments(spec)

    results = benchmark(run)

    # Every execution backend over the unified ResultSet stays
    # byte-identical (grid-order collection, sorted-key JSON).
    assert run_experiments(spec, workers=2, backend="process").to_json() == results.to_json()
    assert run_experiments(spec, workers=4, backend="thread").to_json() == results.to_json()

    # Group the records per instance coordinate: every (workload, k, F)
    # point must satisfy both endpoint identities.
    by_instance = {}
    for record in results:
        key = (record.workload, record.cache_size, record.fetch_time)
        by_instance.setdefault(key, {})[record.algorithm_spec] = record
    assert by_instance
    for key, records in by_instance.items():
        aggressive = records["aggressive"].metrics
        conservative = records["conservative"].metrics
        d0 = records["delay:d=0"].metrics
        dn = records[f"delay:d={BIG_DELAY}"].metrics
        assert d0.elapsed_time == aggressive.elapsed_time, key
        assert d0.num_fetches == aggressive.num_fetches, key
        assert dn.elapsed_time == conservative.elapsed_time, key
        assert dn.num_fetches == conservative.num_fetches, key

    series = {
        f"d={d}": {
            f"{key[0][:24]}…" if len(key[0]) > 25 else key[0]: records[
                f"delay:d={d}"
            ].metrics.elapsed_time
            for key, records in by_instance.items()
        }
        for d in DELAYS
    }
    emit(
        "E12: Delay(d) endpoints at scale "
        f"(elapsed time; d=0 ≡ aggressive, d={BIG_DELAY} ≡ conservative)",
        format_comparison(series, x_label="workload"),
    )
