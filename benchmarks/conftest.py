"""Shared helpers for the experiment benchmarks.

Each ``bench_e*.py`` module reproduces one experiment from EXPERIMENTS.md.
The modules use ``pytest-benchmark`` to time the algorithm under study and
print the experiment's result table once per session (captured with ``-s`` or
in the benchmark summary output).
"""

from __future__ import annotations

import pytest


def emit(title: str, body: str) -> None:
    """Print an experiment table in a recognisable block."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def report_sink():
    """Collects experiment tables and prints them at the end of the session."""
    tables = []
    yield tables
    for title, body in tables:
        emit(title, body)
