"""E9 — ablation of the Theorem 1 phase length.

The refined analysis partitions the sequence into phases of
``k + ceil(k/F) - 1`` requests (Cao et al. used ``k``) and shows Aggressive
loses at most ``F`` time units per phase.  This ablation measures Aggressive's
per-phase stall under both phase conventions: with the longer phases the
average per-phase stall stays below ``F`` (matching the proof), and because
there are fewer phases the implied ratio ``1 + F/(phase length)`` is tighter.
"""

from __future__ import annotations

from repro.algorithms import Aggressive
from repro.analysis import format_table
from repro.core.phases import phase_breakdown, phase_length
from repro.disksim import ProblemInstance, simulate
from repro.workloads import theorem2_sequence, zipf

from conftest import emit


def _instances():
    return {
        "adversarial k=13 F=4": theorem2_sequence(13, 4, num_phases=6).instance,
        "adversarial k=9 F=3": theorem2_sequence(9, 3, num_phases=6).instance,
        "zipf k=12 F=4": ProblemInstance.single_disk(
            zipf(96, 30, seed=5, prefix="e9_"), cache_size=12, fetch_time=4
        ),
    }


def test_e9_phase_length_ablation(benchmark):
    instances = _instances()

    def run():
        return {label: simulate(inst, Aggressive()) for label, inst in instances.items()}

    results = benchmark(run)

    rows = []
    for label, result in results.items():
        instance = instances[label]
        refined = phase_breakdown(result, refined=True)
        original = phase_breakdown(result, refined=False)
        rows.append(
            {
                "workload": label,
                "phase_len_refined": phase_length(instance.cache_size, instance.fetch_time),
                "phase_len_cao": phase_length(
                    instance.cache_size, instance.fetch_time, refined=False
                ),
                "phases_refined": refined.num_phases,
                "phases_cao": original.num_phases,
                "avg_stall_refined": round(refined.average_stall(), 3),
                "avg_stall_cao": round(original.average_stall(), 3),
                "F": instance.fetch_time,
            }
        )
        # The induction's accounting: on average at most F extra time units per
        # (refined) phase.
        assert refined.average_stall() <= instance.fetch_time + 1e-9
    emit("E9: phase-length ablation for the Theorem 1 analysis", format_table(rows))
