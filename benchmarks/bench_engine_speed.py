#!/usr/bin/env python3
"""Engine throughput microbenchmark: indexed engine vs the scan reference.

Measures ``simulate()`` throughput (requests/second) on 5,000-request
single-disk workloads for both query backends and writes the numbers to
``BENCH_engine.json`` next to this script, so the performance trajectory is
tracked from PR to PR.  The ``loop`` and ``zipf-small-ws`` workloads are the
regimes where the scan engine's per-decision O(n) re-scan turns quadratic
(small working sets keep the next missing block far away); the indexed
engine is expected to be >= 5x faster there.

Run with:  python benchmarks/bench_engine_speed.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.algorithms import make_algorithm
from repro.disksim import ProblemInstance, simulate
from repro.workloads import looping_scan, zipf

N_REQUESTS = 5000

WORKLOADS = {
    # label: (sequence factory, cache size, fetch time)
    "zipf-hot": (lambda: zipf(N_REQUESTS, 120, skew=1.0, seed=7), 64, 10),
    "zipf-small-ws": (lambda: zipf(N_REQUESTS, 70, skew=1.1, seed=3), 64, 10),
    "loop": (lambda: looping_scan(60, 84)[:N_REQUESTS], 64, 10),
}

ALGORITHMS = ("aggressive", "delay:d=3")


def _time_run(instance: ProblemInstance, algorithm_spec: str, engine: str, reps: int) -> float:
    """Best-of-``reps`` wall time of one simulate() call."""
    best = float("inf")
    for _ in range(reps):
        algorithm = make_algorithm(algorithm_spec)
        start = time.perf_counter()
        simulate(instance, algorithm, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark() -> dict:
    """Measure all workload x algorithm cells and return the report dict."""
    results = {}
    worst_speedup = float("inf")
    for label, (factory, cache_size, fetch_time) in WORKLOADS.items():
        sequence = factory()
        instance = ProblemInstance.single_disk(
            sequence, cache_size=cache_size, fetch_time=fetch_time
        )
        for algorithm in ALGORITHMS:
            indexed = _time_run(instance, algorithm, "indexed", reps=3)
            scan = _time_run(instance, algorithm, "scan", reps=1)
            speedup = scan / indexed
            cell = {
                "num_requests": len(sequence),
                "cache_size": cache_size,
                "fetch_time": fetch_time,
                "indexed_seconds": round(indexed, 6),
                "scan_seconds": round(scan, 6),
                "indexed_requests_per_second": round(len(sequence) / indexed, 1),
                "scan_requests_per_second": round(len(sequence) / scan, 1),
                "speedup": round(speedup, 2),
            }
            results[f"{label}/{algorithm}"] = cell
            # Only the small-working-set regimes carry the >= 5x expectation.
            if label != "zipf-hot":
                worst_speedup = min(worst_speedup, speedup)
    return {
        "benchmark": "engine-throughput",
        "num_requests": N_REQUESTS,
        "worst_small_ws_speedup": round(worst_speedup, 2),
        "results": results,
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_path = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    report = run_benchmark()
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for label, cell in report["results"].items():
        print(
            f"{label:28s} indexed {cell['indexed_requests_per_second']:>12,.0f} req/s"
            f"   scan {cell['scan_requests_per_second']:>12,.0f} req/s"
            f"   speedup {cell['speedup']:>6.2f}x"
        )
    print(f"worst small-working-set speedup: {report['worst_small_ws_speedup']}x")
    print(f"wrote {out_path}")
    if report["worst_small_ws_speedup"] < 5.0:
        print("WARNING: speedup below the 5x acceptance threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
