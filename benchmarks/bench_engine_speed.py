#!/usr/bin/env python3
"""Engine throughput microbenchmark: loop engine vs scan vs vector batch.

Thin wrapper over :mod:`repro.analysis.enginebench` (the same measurement
core the ``repro bench engine`` subcommand runs).  Measures ``simulate()``
throughput (requests/second) of the loop and scan engines plus the batched
vector engine (``simulate_batch`` over same-shape instance stacks) on
5,000-request single-disk workloads, and writes the numbers to
``BENCH_engine.json`` next to this script, so the performance trajectory is
tracked from PR to PR.  The ``loop`` and ``zipf-small-ws`` workloads are the
regimes where the scan engine's per-decision O(n) re-scan turns quadratic;
the loop engine is expected to be >= 5x faster there.  The vector batch is
expected to clear 10x over the loop engine on the bench grid; the CI perf
gate (``repro bench engine --gate``) enforces a 5x floor per cell.

Run with:  python benchmarks/bench_engine_speed.py [output.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.analysis.enginebench import format_engine_report, run_engine_benchmark


def run_benchmark() -> dict:
    """Measure all workload x algorithm cells and return the report dict."""
    return run_engine_benchmark()


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_path = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    report = run_benchmark()
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(format_engine_report(report))
    print(f"wrote {out_path}")
    if report["worst_small_ws_speedup"] < 5.0:
        print("WARNING: loop-vs-scan speedup below the 5x acceptance threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
