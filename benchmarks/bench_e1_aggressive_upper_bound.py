"""E1 — Theorem 1: Aggressive's measured ratio vs the refined upper bound.

Sweeps (k, F) over random and adversarial workloads, measures Aggressive's
elapsed-time ratio against the exact LP optimum, and prints it next to the
refined Theorem 1 bound, the original Cao et al. bound and the Theorem 2
lower bound.  Expected shape: measured <= Theorem 1 everywhere, with the
adversarial family pushing measured close to the Theorem 2 value.
"""

from __future__ import annotations

from repro.analysis import evaluate_instances, format_table
from repro.core.bounds import SingleDiskBounds
from repro.disksim import ProblemInstance
from repro.lp import optimal_single_disk
from repro.workloads import build_workload_instance

from conftest import emit

GRID = [
    # (k, F, workload kind)
    (6, 3, "zipf"),
    (8, 4, "zipf"),
    (12, 4, "zipf"),
    (16, 6, "zipf"),
    (7, 4, "adversarial"),
    (13, 4, "adversarial"),
    (11, 6, "adversarial"),
]


def _instance(k: int, fetch_time: int, kind: str) -> ProblemInstance:
    # Both families are built from their registry spec strings (the thm2
    # construction takes k/F from the caller like any grid point would).
    if kind == "adversarial":
        spec = "thm2:phases=4"
    else:
        spec = f"zipf:n=60,blocks={max(10, 2 * k)},seed={k * 31 + fetch_time}"
    return build_workload_instance(spec, cache_size=k, fetch_time=fetch_time)


def test_e1_aggressive_upper_bound(benchmark):
    instances = {(k, f, kind): _instance(k, f, kind) for k, f, kind in GRID}
    labeled = [(f"k={k} F={f} {kind}", inst) for (k, f, kind), inst in instances.items()]

    def run():
        return evaluate_instances(labeled, ["aggressive"]).metric("elapsed_time")

    elapsed = benchmark(run)

    rows = []
    for (k, fetch_time, kind), instance in instances.items():
        optimum = optimal_single_disk(instance).elapsed_time
        bounds = SingleDiskBounds(k, fetch_time)
        ratio = elapsed[f"k={k} F={fetch_time} {kind} alg=aggressive"] / optimum
        rows.append(
            {
                "k": k,
                "F": fetch_time,
                "workload": kind,
                "measured_ratio": round(ratio, 4),
                "thm1_bound": round(bounds.aggressive_refined, 4),
                "cao_bound": round(bounds.aggressive_cao, 4),
                "thm2_lower": round(bounds.aggressive_lower, 4),
            }
        )
        assert ratio <= bounds.aggressive_refined + 1e-9
    emit("E1: Aggressive vs the Theorem 1 refined bound", format_table(rows))
