"""E5 — Conservative's 2-approximation (context from Cao et al.).

Measures Conservative's elapsed-time ratio on random, looping and F >= k
workloads.  Expected shape: always <= 2, approaching 2 only when F is large
relative to the inter-reference distances (the F >= k cyclic scan).
"""

from __future__ import annotations

from repro.analysis import evaluate_instances, format_table
from repro.disksim import ProblemInstance
from repro.lp import optimal_single_disk
from repro.workloads import cao_f_ge_k_sequence, looping_scan, zipf

from conftest import emit


def _instances():
    return {
        "zipf k=8 F=4": ProblemInstance.single_disk(
            zipf(60, 16, seed=3, prefix="e5a_"), cache_size=8, fetch_time=4
        ),
        "loop k=6 F=5": ProblemInstance.single_disk(
            looping_scan(8, 6, prefix="e5b_"), cache_size=6, fetch_time=5
        ),
        "cycle F>=k (k=4,F=6)": cao_f_ge_k_sequence(k=4, fetch_time=6, num_cycles=6),
        "cycle F>=k (k=6,F=9)": cao_f_ge_k_sequence(k=6, fetch_time=9, num_cycles=5),
    }


def test_e5_conservative_two_approximation(benchmark):
    instances = _instances()

    def run():
        elapsed = evaluate_instances(
            instances.items(), ["conservative", "demand"]
        ).metric("elapsed_time")
        return {
            label: {
                "conservative": elapsed[f"{label} alg=conservative"],
                "demand": elapsed[f"{label} alg=demand"],
            }
            for label in instances
        }

    measured = benchmark(run)

    rows = []
    for label, instance in instances.items():
        optimum = optimal_single_disk(instance).elapsed_time
        ratio = measured[label]["conservative"] / optimum
        rows.append(
            {
                "workload": label,
                "conservative_ratio": round(ratio, 4),
                "demand_ratio": round(measured[label]["demand"] / optimum, 4),
                "bound": 2.0,
            }
        )
        assert ratio <= 2.0 + 1e-9
    emit("E5: Conservative 2-approximation", format_table(rows))
