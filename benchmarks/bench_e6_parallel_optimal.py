"""E6 — Theorem 4: minimum-stall schedules for parallel disks.

For D in {2, 3, 4}, computes the Theorem 4 schedule and verifies the two
guarantees: its stall time is at most the unrestricted optimum s_OPT(sigma,k)
(certified by brute force on the tiny instances, by the LP lower bound on the
larger ones) and its extra memory usage is at most 2(D-1).  Baselines
(parallel Aggressive/Conservative, demand fetching) give the context of how
much the optimal schedule saves.
"""

from __future__ import annotations

from repro.algorithms import DemandFetch, ParallelAggressive, ParallelConservative
from repro.analysis import brute_force_optimal_stall, format_table
from repro.disksim import DiskLayout, ProblemInstance, RequestSequence, simulate
from repro.lp import optimal_parallel_schedule
from repro.workloads import uniform_random
from repro.workloads.multidisk import striped_instance

from conftest import emit


def _tiny_instance() -> ProblemInstance:
    layout = DiskLayout.partitioned([["a", "b", "c"], ["x", "y"]])
    sequence = RequestSequence(["a", "x", "b", "y", "c", "a", "x", "b"])
    return ProblemInstance.parallel_disk(
        sequence, cache_size=3, fetch_time=3, layout=layout, initial_cache=["a", "x", "b"]
    )


def _instances():
    instances = {"tiny D=2 (brute-force certified)": _tiny_instance()}
    for num_disks in (2, 3, 4):
        sequence = uniform_random(36, 14, seed=num_disks, prefix=f"e6_{num_disks}_")
        instances[f"random D={num_disks}"] = striped_instance(sequence, 6, 4, num_disks)
    return instances


def test_e6_parallel_optimal_stall(benchmark):
    instances = _instances()

    def run():
        return {label: optimal_parallel_schedule(inst) for label, inst in instances.items()}

    optima = benchmark(run)

    rows = []
    for label, instance in instances.items():
        optimum = optima[label]
        baselines = {
            "parallel-aggressive": simulate(instance, ParallelAggressive()).stall_time,
            "parallel-conservative": simulate(instance, ParallelConservative()).stall_time,
            "demand": simulate(instance, DemandFetch()).stall_time,
        }
        row = {
            "instance": label,
            "D": instance.num_disks,
            "optimal_stall": optimum.stall_time,
            "extra_cache": optimum.extra_cache_used,
            "allowed_extra": 2 * (instance.num_disks - 1),
            **baselines,
        }
        if "tiny" in label:
            unrestricted = brute_force_optimal_stall(instance).stall_time
            row["s_OPT(k)"] = unrestricted
            assert optimum.stall_time <= unrestricted
        rows.append(row)
        assert optimum.extra_cache_used <= 2 * (instance.num_disks - 1)
        assert optimum.stall_time <= baselines["parallel-aggressive"]
    emit("E6: Theorem 4 parallel-disk optimal stall", format_table(rows))
