"""E6 — Theorem 4: minimum-stall schedules for parallel disks.

For D in {2, 3, 4}, runs the parallel baselines through the batched
runner's optimum pipeline (``evaluate_instances`` with
``compute_optimum=True``): the Theorem 4 schedule is solved once per
instance by the optimum service and attached to every baseline's record.
Verifies the two guarantees: the schedule's stall time is at most the
unrestricted optimum s_OPT(sigma, k) (certified by brute force on the tiny
instance, by the LP lower bound on the larger ones) and its extra memory
usage is at most 2(D-1).  The baselines (parallel Aggressive/Conservative,
demand fetching) give the context of how much the optimal schedule saves.
"""

from __future__ import annotations

from repro.analysis import brute_force_optimal_stall, format_table
from repro.disksim import DiskLayout, ProblemInstance, RequestSequence
from repro.lp import OptimumService
from repro.workloads import uniform_random
from repro.workloads.multidisk import striped_instance

from conftest import emit

BASELINES = ("parallel-aggressive", "parallel-conservative", "demand")


def _tiny_instance() -> ProblemInstance:
    layout = DiskLayout.partitioned([["a", "b", "c"], ["x", "y"]])
    sequence = RequestSequence(["a", "x", "b", "y", "c", "a", "x", "b"])
    return ProblemInstance.parallel_disk(
        sequence, cache_size=3, fetch_time=3, layout=layout, initial_cache=["a", "x", "b"]
    )


def _instances():
    instances = {"tiny D=2 (brute-force certified)": _tiny_instance()}
    for num_disks in (2, 3, 4):
        sequence = uniform_random(36, 14, seed=num_disks, prefix=f"e6_{num_disks}_")
        instances[f"random D={num_disks}"] = striped_instance(sequence, 6, 4, num_disks)
    return instances


def test_e6_parallel_optimal_stall(benchmark, tmp_path):
    instances = _instances()
    labeled = list(instances.items())

    from repro.analysis import evaluate_instances

    def run():
        return evaluate_instances(
            labeled, list(BASELINES), compute_optimum=True, cache_dir=tmp_path
        )

    results = benchmark(run)

    # The records carry the Theorem 4 stall; the extra-memory guarantee is
    # read off the optimum records, served from the run's shared disk cache
    # (fingerprint lookups, no re-solve).
    service = OptimumService(tmp_path / "optima")
    rows = []
    for label, instance in instances.items():
        optimum_record = service.optimum(instance)
        baseline_stalls = {
            spec: next(
                r for r in results if r.point == f"{label} alg={spec}"
            ).metrics.stall_time
            for spec in BASELINES
        }
        attached = next(r for r in results if r.point == f"{label} alg={BASELINES[0]}")
        assert attached.optimal_stall == max(optimum_record.stall_time, 0)
        row = {
            "instance": label,
            "D": instance.num_disks,
            "optimal_stall": optimum_record.stall_time,
            "extra_cache": optimum_record.extra_cache_used,
            "allowed_extra": 2 * (instance.num_disks - 1),
            "lp_seconds": round(optimum_record.solve_seconds, 3),
            **baseline_stalls,
        }
        if "tiny" in label:
            unrestricted = brute_force_optimal_stall(instance).stall_time
            row["s_OPT(k)"] = unrestricted
            assert optimum_record.stall_time <= unrestricted
        rows.append(row)
        assert optimum_record.extra_cache_used <= 2 * (instance.num_disks - 1)
        assert optimum_record.stall_time <= baseline_stalls["parallel-aggressive"]
    emit("E6: Theorem 4 parallel-disk optimal stall", format_table(rows))
