"""E3 — Theorem 3: Delay(d) as a function of d.

Sweeps the delay parameter from 0 (Aggressive) to beyond F, measuring the
elapsed-time ratio on a mix of workloads and printing it next to the
Theorem 3 bound max{(d+F)/F, (d+2F)/(d+F), 3(d+F)/(d+2F)}.  Expected shape:
the measured curve stays below the bound; the bound itself is minimised near
d0 = (sqrt(3)-1)F/2.
"""

from __future__ import annotations

from repro.analysis import evaluate_instances, format_table
from repro.core.bounds import best_delay_parameter, delay_bound
from repro.disksim import ProblemInstance
from repro.lp import optimal_single_disk
from repro.workloads import theorem2_sequence, zipf

from conftest import emit

FETCH_TIME = 6
CACHE = 9
DELAYS = [0, 1, 2, 3, 4, 6, 9, 12]


def _instances():
    instances = [theorem2_sequence(CACHE, 3, num_phases=5).instance.with_cache_size(CACHE)]
    for seed in (1, 2):
        sequence = zipf(60, 18, seed=seed, prefix=f"e3_{seed}_")
        instances.append(
            ProblemInstance.single_disk(sequence, cache_size=CACHE, fetch_time=FETCH_TIME)
        )
    return instances


def test_e3_delay_parameter_sweep(benchmark):
    instances = _instances()
    optima = [optimal_single_disk(instance).elapsed_time for instance in instances]
    labeled = [(f"i{i}", instance) for i, instance in enumerate(instances)]

    def run():
        elapsed = evaluate_instances(
            labeled, [f"delay:d={d}" for d in DELAYS]
        ).metric("elapsed_time")
        return {
            d: [elapsed[f"i{i} alg=delay:d={d}"] for i in range(len(instances))]
            for d in DELAYS
        }

    measured = benchmark(run)

    d0 = best_delay_parameter(FETCH_TIME)
    rows = []
    for d in DELAYS:
        worst = max(e / o for e, o in zip(measured[d], optima))
        rows.append(
            {
                "d": d,
                "is_d0": "*" if d == d0 else "",
                "worst_measured_ratio": round(worst, 4),
                "thm3_bound(F=6)": round(delay_bound(d, FETCH_TIME), 4),
            }
        )
    emit(
        "E3: Delay(d) sweep (worst measured ratio over the workload set)",
        format_table(rows),
    )
    # The theoretical curve is minimised at (or next to) d0.
    bounds = {d: delay_bound(d, FETCH_TIME) for d in DELAYS}
    assert min(bounds, key=bounds.get) in {d0, d0 - 1, d0 + 1}
