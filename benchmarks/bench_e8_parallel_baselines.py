"""E8 — prior-work context: parallel Aggressive/Conservative degrade with D.

Kimbrel and Karlin showed the natural multi-disk generalisations of the
classical algorithms have approximation ratios that grow with the number of
disks.  This experiment sweeps D and reports the baselines' stall relative to
the Theorem 4 schedule.  Expected shape: the gap (ratio) tends to widen as D
grows, while the Theorem 4 schedule stays at the optimum by construction.
"""

from __future__ import annotations

from repro.analysis import evaluate_instances, format_table
from repro.lp import optimal_parallel_schedule
from repro.workloads import build_workload_instance

from conftest import emit

DISKS = [1, 2, 3, 4]


def _instance(num_disks: int):
    return build_workload_instance(
        "uniform:n=40,blocks=16,seed=17",
        cache_size=6, fetch_time=4, disks=num_disks, layout="striped",
    )


def test_e8_parallel_baselines(benchmark):
    instances = {d: _instance(d) for d in DISKS}

    labeled = [(f"D={d}", instance) for d, instance in instances.items()]
    algorithms = ["parallel-aggressive", "parallel-conservative", "demand"]

    def run():
        stall = evaluate_instances(labeled, algorithms).metric("stall_time")
        return {
            d: {alg: stall[f"D={d} alg={alg}"] for alg in algorithms}
            for d in instances
        }

    measured = benchmark(run)

    rows = []
    for d, values in measured.items():
        optimum = optimal_parallel_schedule(instances[d])
        reference = max(optimum.stall_time, 1)
        rows.append(
            {
                "D": d,
                "optimal_stall": optimum.stall_time,
                "aggr_stall": values["parallel-aggressive"],
                "aggr_vs_opt": round(values["parallel-aggressive"] / reference, 3),
                "cons_stall": values["parallel-conservative"],
                "cons_vs_opt": round(values["parallel-conservative"] / reference, 3),
                "demand_stall": values["demand"],
            }
        )
        assert optimum.stall_time <= values["parallel-aggressive"]
        assert optimum.stall_time <= values["parallel-conservative"]
    emit("E8: parallel-disk baselines vs the Theorem 4 schedule", format_table(rows))
