"""E0 — the worked examples of the paper's introduction.

Reproduces, digit for digit, the numbers the paper states: the single-disk
example (elapsed 13 for the greedy choice, 11 for the better one) and the
two-disk example (stall 3 for the narrated schedule).
"""

from __future__ import annotations

from repro.algorithms import Aggressive
from repro.analysis import format_table
from repro.disksim import execute_interval_schedule, simulate
from repro.lp import optimal_single_disk
from repro.workloads import (
    parallel_disk_example,
    parallel_disk_example_schedule,
    single_disk_example,
    single_disk_example_good_schedule,
    single_disk_example_greedy_schedule,
)

from conftest import emit


def test_e0_paper_examples(benchmark):
    single = single_disk_example()
    parallel = parallel_disk_example()

    def run():
        return {
            "aggressive": simulate(single, Aggressive()).elapsed_time,
            "greedy": execute_interval_schedule(
                single, single_disk_example_greedy_schedule()
            ).elapsed_time,
            "good": execute_interval_schedule(
                single, single_disk_example_good_schedule()
            ).elapsed_time,
            "parallel_stall": execute_interval_schedule(
                parallel, parallel_disk_example_schedule()
            ).stall_time,
        }

    measured = benchmark(run)
    optimum = optimal_single_disk(single).elapsed_time

    rows = [
        {"quantity": "single disk, fetch at b2 (greedy) elapsed", "paper": 13, "measured": measured["greedy"]},
        {"quantity": "single disk, Aggressive elapsed", "paper": 13, "measured": measured["aggressive"]},
        {"quantity": "single disk, fetch at b3 (better) elapsed", "paper": 11, "measured": measured["good"]},
        {"quantity": "single disk, optimal elapsed (LP)", "paper": 11, "measured": optimum},
        {"quantity": "two disks, narrated schedule stall", "paper": 3, "measured": measured["parallel_stall"]},
    ]
    emit("E0: worked examples from the introduction", format_table(rows))
    assert measured["greedy"] == 13
    assert measured["aggressive"] == 13
    assert measured["good"] == 11
    assert optimum == 11
    assert measured["parallel_stall"] == 3
