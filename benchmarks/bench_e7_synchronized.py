"""E7 — Lemma 3: synchronized schedules lose nothing.

On tiny multi-disk instances where the unrestricted optimum s_OPT(sigma, k)
can be certified by brute force, the optimal *synchronized* schedule (with
D-1 extra cache locations) achieves a stall time that is never larger.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import compare_synchronized_to_optimal
from repro.disksim import DiskLayout, ProblemInstance, RequestSequence

from conftest import emit


def _instances():
    cases = {}
    cases["interleaved D=2"] = ProblemInstance.parallel_disk(
        RequestSequence(["a", "x", "b", "y", "c", "a", "x", "b"]),
        cache_size=3,
        fetch_time=3,
        layout=DiskLayout.partitioned([["a", "b", "c"], ["x", "y"]]),
        initial_cache=["a", "x", "b"],
    )
    cases["cold D=2"] = ProblemInstance.parallel_disk(
        RequestSequence(["a", "x", "b", "y", "a", "x"]),
        cache_size=2,
        fetch_time=2,
        layout=DiskLayout.partitioned([["a", "b"], ["x", "y"]]),
    )
    cases["three disks"] = ProblemInstance.parallel_disk(
        RequestSequence(["a", "x", "p", "b", "y", "q", "a", "x"]),
        cache_size=3,
        fetch_time=2,
        layout=DiskLayout.partitioned([["a", "b"], ["x", "y"], ["p", "q"]]),
        initial_cache=["a", "x", "p"],
    )
    return cases


def test_e7_synchronized_schedules(benchmark):
    instances = _instances()

    def run():
        return {label: compare_synchronized_to_optimal(inst) for label, inst in instances.items()}

    comparisons = benchmark(run)

    rows = []
    for label, comparison in comparisons.items():
        rows.append(
            {
                "instance": label,
                "D": comparison.num_disks,
                "synchronized_stall": comparison.synchronized_stall,
                "unrestricted_s_OPT(k)": comparison.unrestricted_optimal_stall,
                "extra_cache_used": comparison.extra_cache_used,
                "lemma3_holds": comparison.lemma3_holds,
            }
        )
        assert comparison.lemma3_holds
    emit("E7: Lemma 3 — synchronized schedules vs the unrestricted optimum", format_table(rows))
