"""E10 — ablation: the three routes to an optimal schedule agree, and the
cached optimum pipeline makes repeated ratio sweeps >= 2x faster.

Part one compares (a) the LP relaxation + paper rounding route, (b) the
exact MILP route and (c) the brute-force state-space optimum on tiny
instances.  The three must agree on the optimal stall value (the rounding
route may use up to D-1 further cache locations); the benchmark also
records how often the plain LP relaxation is already integral, which is
what makes the polynomial-time claim of the paper practical.

Part two measures the end-to-end cost of *repeated* ratio sweeps: the
pre-optimum-service path re-solved every instance's LP on every run, while
the batched runner with ``compute_optimum=True`` and a cache directory
solves each LP once and serves every re-run from the fingerprinted caches.
The acceptance bar (asserted) is a >= 2x speedup on re-runs.
"""

from __future__ import annotations

import time

from repro.analysis import brute_force_optimal_stall, format_table
from repro.analysis.runner import ExperimentSpec, run_experiments
from repro.disksim import DiskLayout, ProblemInstance, RequestSequence, simulate
from repro.algorithms import make_algorithm
from repro.lp import (
    SynchronizedLPModel,
    optimal_parallel_schedule,
    optimal_single_disk,
    solve_relaxation,
)
from repro.workloads import uniform_random
from repro.workloads.spec import build_workload_instance

from conftest import emit


def _instances():
    cases = {}
    cases["single disk, warm"] = ProblemInstance.single_disk(
        RequestSequence(["a", "b", "c", "a", "d", "b", "a", "c"]),
        cache_size=3,
        fetch_time=3,
        initial_cache=["a", "b", "c"],
    )
    cases["single disk, cold"] = ProblemInstance.single_disk(
        uniform_random(12, 5, seed=2, prefix="e10_"), cache_size=3, fetch_time=2
    )
    cases["two disks"] = ProblemInstance.parallel_disk(
        RequestSequence(["a", "x", "b", "y", "c", "a", "x", "b"]),
        cache_size=3,
        fetch_time=3,
        layout=DiskLayout.partitioned([["a", "b", "c"], ["x", "y"]]),
        initial_cache=["a", "x", "b"],
    )
    return cases


def test_e10_lp_vs_milp_vs_brute_force(benchmark):
    instances = _instances()

    def run():
        out = {}
        for label, instance in instances.items():
            out[label] = {
                "milp": optimal_parallel_schedule(instance, method="milp"),
                "rounding": optimal_parallel_schedule(instance, method="lp-rounding"),
            }
        return out

    solved = benchmark(run)

    rows = []
    for label, instance in instances.items():
        brute = brute_force_optimal_stall(instance)
        relaxation = solve_relaxation(SynchronizedLPModel(instance))
        milp = solved[label]["milp"]
        rounding = solved[label]["rounding"]
        rows.append(
            {
                "instance": label,
                "brute_force_s_OPT(k)": brute.stall_time,
                "milp_stall": milp.stall_time,
                "rounding_stall": rounding.stall_time,
                "rounding_method": rounding.method_used,
                "lp_relaxation": round(relaxation.objective, 3),
                "relaxation_integral": relaxation.is_integral,
            }
        )
        assert milp.stall_time <= brute.stall_time
        assert rounding.stall_time <= brute.stall_time
    emit("E10: LP rounding vs exact MILP vs brute force", format_table(rows))


RATIO_WORKLOADS = (
    "loop:blocks=10,loops=4",
    "zipf:n=50,blocks=12",
    "scan:blocks=18",
    "uniform:n=40,blocks=10",
)
RATIO_ALGORITHMS = ("aggressive", "conservative", "delay:d=2")
REPEATS = 3


def test_e10b_cached_ratio_sweep_speedup(tmp_path):
    """Repeated ratio sweeps through the optimum pipeline are >= 2x faster
    than the pre-service path (one LP per point per run, no caching)."""
    spec = ExperimentSpec(
        name="e10b",
        workloads=RATIO_WORKLOADS,
        cache_sizes=(4,),
        fetch_times=(3,),
        algorithms=RATIO_ALGORITHMS,
        compute_optimum=True,
    )

    # Pre-PR shape: every repeat re-solves every instance's LP and re-runs
    # every simulation, serially and uncached.
    started = time.perf_counter()
    for _ in range(REPEATS):
        for workload in RATIO_WORKLOADS:
            instance = build_workload_instance(workload, cache_size=4, fetch_time=3)
            optimum = optimal_single_disk(instance)
            for algorithm in RATIO_ALGORITHMS:
                result = simulate(instance, make_algorithm(algorithm))
                assert result.elapsed_time >= optimum.elapsed_time
    legacy_seconds = time.perf_counter() - started

    # Pipeline shape: first run warms the result + optimum caches, repeats
    # are pure cache hits.
    warm = run_experiments(spec, cache_dir=tmp_path)
    assert all(record.optimal_elapsed is not None for record in warm)
    started = time.perf_counter()
    for _ in range(REPEATS):
        rerun = run_experiments(spec, cache_dir=tmp_path)
        assert rerun.cached_points == len(rerun.records)
    cached_seconds = time.perf_counter() - started

    speedup = legacy_seconds / max(cached_seconds, 1e-9)
    emit(
        "E10b: repeated ratio sweeps — cached pipeline vs pre-service path",
        format_table(
            [
                {
                    "repeats": REPEATS,
                    "points": len(warm.records),
                    "legacy_seconds": round(legacy_seconds, 3),
                    "cached_seconds": round(cached_seconds, 3),
                    "speedup": round(speedup, 1),
                }
            ]
        ),
    )
    assert speedup >= 2.0, f"cached ratio sweeps only {speedup:.1f}x faster"
