"""E10 — ablation: the three routes to an optimal schedule agree.

Compares (a) the LP relaxation + paper rounding route, (b) the exact MILP
route and (c) the brute-force state-space optimum on tiny instances.  The
three must agree on the optimal stall value (the rounding route may use up to
D-1 further cache locations); the benchmark also records how often the plain
LP relaxation is already integral, which is what makes the polynomial-time
claim of the paper practical.
"""

from __future__ import annotations

from repro.analysis import brute_force_optimal_stall, format_table
from repro.disksim import DiskLayout, ProblemInstance, RequestSequence
from repro.lp import SynchronizedLPModel, optimal_parallel_schedule, solve_relaxation
from repro.workloads import uniform_random

from conftest import emit


def _instances():
    cases = {}
    cases["single disk, warm"] = ProblemInstance.single_disk(
        RequestSequence(["a", "b", "c", "a", "d", "b", "a", "c"]),
        cache_size=3,
        fetch_time=3,
        initial_cache=["a", "b", "c"],
    )
    cases["single disk, cold"] = ProblemInstance.single_disk(
        uniform_random(12, 5, seed=2, prefix="e10_"), cache_size=3, fetch_time=2
    )
    cases["two disks"] = ProblemInstance.parallel_disk(
        RequestSequence(["a", "x", "b", "y", "c", "a", "x", "b"]),
        cache_size=3,
        fetch_time=3,
        layout=DiskLayout.partitioned([["a", "b", "c"], ["x", "y"]]),
        initial_cache=["a", "x", "b"],
    )
    return cases


def test_e10_lp_vs_milp_vs_brute_force(benchmark):
    instances = _instances()

    def run():
        out = {}
        for label, instance in instances.items():
            out[label] = {
                "milp": optimal_parallel_schedule(instance, method="milp"),
                "rounding": optimal_parallel_schedule(instance, method="lp-rounding"),
            }
        return out

    solved = benchmark(run)

    rows = []
    for label, instance in instances.items():
        brute = brute_force_optimal_stall(instance)
        relaxation = solve_relaxation(SynchronizedLPModel(instance))
        milp = solved[label]["milp"]
        rounding = solved[label]["rounding"]
        rows.append(
            {
                "instance": label,
                "brute_force_s_OPT(k)": brute.stall_time,
                "milp_stall": milp.stall_time,
                "rounding_stall": rounding.stall_time,
                "rounding_method": rounding.method_used,
                "lp_relaxation": round(relaxation.objective, 3),
                "relaxation_integral": relaxation.is_integral,
            }
        )
        assert milp.stall_time <= brute.stall_time
        assert rounding.stall_time <= brute.stall_time
    emit("E10: LP rounding vs exact MILP vs brute force", format_table(rows))
