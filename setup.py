"""Setuptools shim so that editable installs work on environments without the
``wheel`` package (PEP 660 editable builds need it; ``setup.py develop`` does not).
All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
